/// \file oic_cert.cpp
/// Offline certificate manager over the plant registry -- the "compute
/// once" half of the certificate layer:
///
///   oic_cert synth  --cert-dir certs [--plant a,b] [--force] [--json PATH]
///   oic_cert verify --cert-dir certs [--plant a,b] [--json PATH]
///   oic_cert ls     --cert-dir certs [--json PATH]
///
///   synth    resolve each plant's certificate through the cert::Store
///            (load-or-synthesize; --force re-synthesizes and rewrites
///            unconditionally) and report hash + set sizes
///   verify   load each plant's cached file and run the independent
///            re-check (hash freshness, the Theorem-1 nesting, the
///            Definition-3 property, ladder chain nesting)
///   ls       list the cache directory's entries with their headers
///
/// Evaluation and training then reuse the cache via
/// `oic_eval/oic_train --cert-dir certs`: plant construction becomes
/// file-read-bound, and a stale file (model changed) is rejected by
/// content hash and transparently re-synthesized.
///
/// --json writes the machine-readable document (shared bench envelope:
/// schema_version + build provenance; safety_violations reports verify
/// failures).
///
/// Exit status: 0 on success, 1 on any verification failure or bad usage.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cert/store.hpp"
#include "cli_util.hpp"
#include "common/error.hpp"
#include "common/jsonout.hpp"

namespace {

using oic::cliutil::Args;
using oic::cliutil::split_list;
using oic::eval::ScenarioRegistry;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void print_usage() {
  std::printf(
      "usage: oic_cert <synth|verify|ls> --cert-dir DIR [--plant a,b] [--force]\n"
      "                [--json PATH]\n"
      "  synth   load-or-synthesize certificates into the cache directory\n"
      "          (--force: re-synthesize and rewrite unconditionally)\n"
      "  verify  re-check cached certificates (hash, nesting, Definition 3)\n"
      "  ls      list the cache directory\n");
}

std::vector<std::string> resolve_plants(const ScenarioRegistry& registry,
                                        Args& args) {
  std::string v;
  if (args.value("plant", v) || args.value("plants", v)) return split_list(v);
  return registry.production_plant_ids();
}

/// Per-plant result rows as JSON object strings; main joins them into the
/// document's "results" array when --json was given.
int run_synth(const ScenarioRegistry& registry, const std::vector<std::string>& plants,
              const oic::cert::Store& store, bool force,
              std::vector<std::string>& rows) {
  std::printf("%-10s %-18s %6s %6s %8s %10s  %s\n", "plant", "model-hash", "XI", "X'",
              "ladder", "wall[ms]", "source");
  for (const auto& pid : plants) {
    const oic::cert::PlantModel model = registry.make_model(pid);
    const auto t0 = Clock::now();
    oic::cert::PlantCertificate cert;
    bool cached = false;
    if (force) {
      cert = store.refresh(model);  // atomic rewrite, like every Store write
    } else if (auto hit = store.load_if_fresh(model)) {
      cert = std::move(*hit);
      cached = true;
    } else {
      cert = store.get(model);
    }
    const double wall = ms_since(t0);
    std::printf("%-10s %-18s %6zu %6zu %8zu %10.1f  %s\n", pid.c_str(),
                oic::cert::hash_hex(cert.model_hash).c_str(),
                cert.sets.xi.num_constraints(), cert.sets.x_prime.num_constraints(),
                cert.ladder.size(), wall, cached ? "cache" : "synthesized");
    std::string row = "{\"plant\": ";
    oic::jsonout::append_string(row, pid);
    row += ", \"hash\": ";
    oic::jsonout::append_string(row, oic::cert::hash_hex(cert.model_hash));
    oic::jsonout::append_format(
        row, ", \"xi\": %zu, \"x_prime\": %zu, \"ladder\": %zu, \"cached\": %s}",
        cert.sets.xi.num_constraints(), cert.sets.x_prime.num_constraints(),
        cert.ladder.size(), cached ? "true" : "false");
    rows.push_back(std::move(row));
  }
  std::printf("certificates in %s\n", store.dir().c_str());
  return 0;
}

int run_verify(const ScenarioRegistry& registry,
               const std::vector<std::string>& plants, const oic::cert::Store& store,
               std::vector<std::string>& rows) {
  bool all_ok = true;
  for (const auto& pid : plants) {
    const oic::cert::PlantModel model = registry.make_model(pid);
    const std::string path = store.path_for(model);
    std::string row = "{\"plant\": ";
    oic::jsonout::append_string(row, pid);
    try {
      const oic::cert::PlantCertificate cert = oic::cert::load_certificate_file(path);
      oic::cert::verify(model, cert);
      std::printf("%-10s OK    %s (hash %s, ladder depth %zu)\n", pid.c_str(),
                  path.c_str(), oic::cert::hash_hex(cert.model_hash).c_str(),
                  cert.ladder.size());
      row += ", \"ok\": true, \"hash\": ";
      oic::jsonout::append_string(row, oic::cert::hash_hex(cert.model_hash));
      row += ", \"error\": \"\"}";
    } catch (const oic::Error& e) {
      std::printf("%-10s FAIL  %s\n", pid.c_str(), e.what());
      all_ok = false;
      row += ", \"ok\": false, \"hash\": \"\", \"error\": ";
      oic::jsonout::append_string(row, e.what());
      row += "}";
    }
    rows.push_back(std::move(row));
  }
  std::printf("verify: %s\n", all_ok ? "all certificates hold" : "FAILURES (see above)");
  return all_ok ? 0 : 1;
}

int run_ls(const oic::cert::Store& store, std::vector<std::string>& rows) {
  const auto entries = store.ls();
  if (entries.empty()) {
    std::printf("no certificates in %s\n", store.dir().c_str());
    return 0;
  }
  std::printf("%-24s %-10s %-18s %s\n", "file", "plant", "model-hash", "header");
  for (const auto& e : entries) {
    std::printf("%-24s %-10s %-18s %s\n", e.filename.c_str(), e.plant.c_str(),
                e.hash.c_str(), e.readable ? "ok" : "UNREADABLE");
    std::string row = "{\"file\": ";
    oic::jsonout::append_string(row, e.filename);
    row += ", \"plant\": ";
    oic::jsonout::append_string(row, e.plant);
    row += ", \"hash\": ";
    oic::jsonout::append_string(row, e.hash);
    row += e.readable ? ", \"readable\": true}" : ", \"readable\": false}";
    rows.push_back(std::move(row));
  }
  return 0;
}

std::string cert_json(const std::string& command, const std::string& cert_dir,
                      const std::vector<std::string>& plants, bool force,
                      const std::vector<std::string>& rows, bool failures) {
  oic::jsonout::Doc doc("oic_cert");
  std::string& out = doc.body();
  out += "  \"config\": {\"command\": ";
  oic::jsonout::append_string(out, command);
  out += ", \"cert_dir\": ";
  oic::jsonout::append_string(out, cert_dir);
  out += ", \"plants\": ";
  oic::jsonout::append_string_array(out, plants);
  oic::jsonout::append_format(out, ", \"force\": %s},\n", force ? "true" : "false");
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "    " + rows[i];
    out += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";
  return std::move(doc).finish(failures);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help") {
    print_usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string command = argv[1];
  // Reject unknown subcommands before anything touches the filesystem --
  // a typo'd command must not create the cache directory as a side effect.
  if (command != "synth" && command != "verify" && command != "ls") {
    std::fprintf(stderr, "oic_cert: unknown command '%s'\n", command.c_str());
    print_usage();
    return 1;
  }
  // Parse flags after the subcommand (Args scans the whole argv; the
  // subcommand itself is consumed here).
  Args args(argc - 1, argv + 1);
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();

  oic::cliutil::CommonOpts common;
  oic::cliutil::CommonFlagSet accept;
  accept.faults = false;   // certificates are a fault-free offline artifact
  accept.seeds = false;    // synthesis is deterministic, no seed
  accept.workers = false;  // per-plant work is serial file I/O
  if (!oic::cliutil::parse_common(args, "oic_cert", common, accept)) return 1;
  if (common.cert_dir.empty()) {
    std::fprintf(stderr, "oic_cert: --cert-dir DIR is required\n");
    return 1;
  }
  const bool force = args.flag("force");

  try {
    const std::vector<std::string> plants = resolve_plants(registry, args);
    for (const auto& pid : plants) (void)registry.plant(pid);  // typo check first

    if (!oic::cliutil::reject_unknown(args, "oic_cert")) return 1;

    const oic::cert::Store store(common.cert_dir);
    std::vector<std::string> rows;
    int rc = 0;
    if (command == "synth") {
      rc = run_synth(registry, plants, store, force, rows);
    } else if (command == "verify") {
      rc = run_verify(registry, plants, store, rows);
    } else {
      rc = run_ls(store, rows);
    }
    if (common.write_json &&
        !oic::cliutil::write_json_file(
            "oic_cert", common.json_path,
            cert_json(command, common.cert_dir, plants, force, rows, rc != 0))) {
      return 1;
    }
    return rc;
  } catch (const oic::Error& e) {
    std::fprintf(stderr, "oic_cert: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything escaping the oic::Error hierarchy (bad_alloc, filesystem
    // errors, ...) must still die with a diagnosable message and a
    // nonzero exit, never a raw terminate().
    std::fprintf(stderr, "oic_cert: unexpected error: %s\n", e.what());
    return 1;
  }
}
