/// \file oic_cert.cpp
/// Offline certificate manager over the plant registry -- the "compute
/// once" half of the certificate layer:
///
///   oic_cert synth  --cert-dir certs [--plant a,b] [--force]
///   oic_cert verify --cert-dir certs [--plant a,b]
///   oic_cert ls     --cert-dir certs
///
///   synth    resolve each plant's certificate through the cert::Store
///            (load-or-synthesize; --force re-synthesizes and rewrites
///            unconditionally) and report hash + set sizes
///   verify   load each plant's cached file and run the independent
///            re-check (hash freshness, the Theorem-1 nesting, the
///            Definition-3 property, ladder chain nesting)
///   ls       list the cache directory's entries with their headers
///
/// Evaluation and training then reuse the cache via
/// `oic_eval/oic_train --cert-dir certs`: plant construction becomes
/// file-read-bound, and a stale file (model changed) is rejected by
/// content hash and transparently re-synthesized.
///
/// Exit status: 0 on success, 1 on any verification failure or bad usage.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cert/store.hpp"
#include "cli_util.hpp"
#include "common/error.hpp"

namespace {

using oic::cliutil::Args;
using oic::cliutil::split_list;
using oic::eval::ScenarioRegistry;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void print_usage() {
  std::printf(
      "usage: oic_cert <synth|verify|ls> --cert-dir DIR [--plant a,b] [--force]\n"
      "  synth   load-or-synthesize certificates into the cache directory\n"
      "          (--force: re-synthesize and rewrite unconditionally)\n"
      "  verify  re-check cached certificates (hash, nesting, Definition 3)\n"
      "  ls      list the cache directory\n");
}

std::vector<std::string> resolve_plants(const ScenarioRegistry& registry,
                                        Args& args) {
  std::string v;
  if (args.value("plant", v) || args.value("plants", v)) return split_list(v);
  return registry.plant_ids();
}

int run_synth(const ScenarioRegistry& registry, const std::vector<std::string>& plants,
              const oic::cert::Store& store, bool force) {
  std::printf("%-10s %-18s %6s %6s %8s %10s  %s\n", "plant", "model-hash", "XI", "X'",
              "ladder", "wall[ms]", "source");
  for (const auto& pid : plants) {
    const oic::cert::PlantModel model = registry.make_model(pid);
    const auto t0 = Clock::now();
    oic::cert::PlantCertificate cert;
    bool cached = false;
    if (force) {
      cert = store.refresh(model);  // atomic rewrite, like every Store write
    } else if (auto hit = store.load_if_fresh(model)) {
      cert = std::move(*hit);
      cached = true;
    } else {
      cert = store.get(model);
    }
    const double wall = ms_since(t0);
    std::printf("%-10s %-18s %6zu %6zu %8zu %10.1f  %s\n", pid.c_str(),
                oic::cert::hash_hex(cert.model_hash).c_str(),
                cert.sets.xi.num_constraints(), cert.sets.x_prime.num_constraints(),
                cert.ladder.size(), wall, cached ? "cache" : "synthesized");
  }
  std::printf("certificates in %s\n", store.dir().c_str());
  return 0;
}

int run_verify(const ScenarioRegistry& registry,
               const std::vector<std::string>& plants, const oic::cert::Store& store) {
  bool all_ok = true;
  for (const auto& pid : plants) {
    const oic::cert::PlantModel model = registry.make_model(pid);
    const std::string path = store.path_for(model);
    try {
      const oic::cert::PlantCertificate cert = oic::cert::load_certificate_file(path);
      oic::cert::verify(model, cert);
      std::printf("%-10s OK    %s (hash %s, ladder depth %zu)\n", pid.c_str(),
                  path.c_str(), oic::cert::hash_hex(cert.model_hash).c_str(),
                  cert.ladder.size());
    } catch (const oic::Error& e) {
      std::printf("%-10s FAIL  %s\n", pid.c_str(), e.what());
      all_ok = false;
    }
  }
  std::printf("verify: %s\n", all_ok ? "all certificates hold" : "FAILURES (see above)");
  return all_ok ? 0 : 1;
}

int run_ls(const oic::cert::Store& store) {
  const auto entries = store.ls();
  if (entries.empty()) {
    std::printf("no certificates in %s\n", store.dir().c_str());
    return 0;
  }
  std::printf("%-24s %-10s %-18s %s\n", "file", "plant", "model-hash", "header");
  for (const auto& e : entries) {
    std::printf("%-24s %-10s %-18s %s\n", e.filename.c_str(), e.plant.c_str(),
                e.hash.c_str(), e.readable ? "ok" : "UNREADABLE");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help") {
    print_usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string command = argv[1];
  // Reject unknown subcommands before anything touches the filesystem --
  // a typo'd command must not create the cache directory as a side effect.
  if (command != "synth" && command != "verify" && command != "ls") {
    std::fprintf(stderr, "oic_cert: unknown command '%s'\n", command.c_str());
    print_usage();
    return 1;
  }
  // Parse flags after the subcommand (Args scans the whole argv; the
  // subcommand itself is consumed here).
  Args args(argc - 1, argv + 1);
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();

  std::string cert_dir;
  if (!args.value("cert-dir", cert_dir)) {
    std::fprintf(stderr, "oic_cert: --cert-dir DIR is required\n");
    return 1;
  }
  const bool force = args.flag("force");

  try {
    const std::vector<std::string> plants = resolve_plants(registry, args);
    for (const auto& pid : plants) (void)registry.plant(pid);  // typo check first

    if (const int unknown = args.first_unknown()) {
      std::fprintf(stderr, "oic_cert: unknown argument '%s' (try --help)\n",
                   argv[unknown + 1]);
      return 1;
    }

    const oic::cert::Store store(cert_dir);
    if (command == "synth") return run_synth(registry, plants, store, force);
    if (command == "verify") return run_verify(registry, plants, store);
    return run_ls(store);
  } catch (const oic::Error& e) {
    std::fprintf(stderr, "oic_cert: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything escaping the oic::Error hierarchy (bad_alloc, filesystem
    // errors, ...) must still die with a diagnosable message and a
    // nonzero exit, never a raw terminate().
    std::fprintf(stderr, "oic_cert: unexpected error: %s\n", e.what());
    return 1;
  }
}
