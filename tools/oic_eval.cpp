/// \file oic_eval.cpp
/// Unified evaluation sweep driver over the plant/scenario registry.
///
///   oic_eval --plant acc --scenario Ex.1 --policies bang-bang,periodic-5 --cases 24
///
/// Sweeps plant x scenario x policy x seed grids through the parallel
/// episode engine and prints a per-cell summary table; --json writes the
/// machine-readable document (schema shared with bench_throughput).
/// Cell results are bit-identical to the serial ACC harness for the same
/// seed (see eval/engine.hpp), so this binary reproduces the paper's
/// Fig. 4/5/6 numbers when pointed at the acc plant.
///
/// Flags (--key value and --key=value are both accepted):
///   --plant/--plants a,b     plants to sweep           (default: all)
///   --scenario/--scenarios   scenario ids              (default: all per plant)
///   --policies a,b           skip policies             (default: bang-bang,periodic-5)
///                            (always-run | bang-bang | periodic-N |
///                             drl:<path to an oic_train agent file>)
///   --cases N                Monte-Carlo cases per cell (default 24)
///   --steps N                steps per episode          (default 100)
///   --seed/--seeds a,b       episode-stream seeds       (default 20200406)
///   --workers N              sweep workers, 0 = auto    (default 0)
///   --cert-dir DIR           certificate cache (cert::Store): plant
///                            construction loads cached `oic-cert v1`
///                            files, synthesizing+writing only on miss
///   --faults SPEC            network fault model: a preset id ("lossy",
///                            ...) or the key:value grammar, e.g.
///                            meas_drop:0.05,meas_delay:2,act_drop:0.02,hold
///                            (default: off -- bit-identical legacy runs)
///   --json PATH              write the JSON document
///   --list                   list plants/scenarios/fault presets and exit
///
/// Exit status: 0 on a clean sweep, 1 on safety violations or bad usage.
/// Under --faults, "safety violation" means leaving the hard safe set X;
/// XI excursions are the measured degradation, reported not fatal.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "eval/sweep.hpp"

namespace {

using oic::cliutil::Args;
using oic::cliutil::parse_count;
using oic::cliutil::print_registry;
using oic::cliutil::split_list;
using oic::eval::ScenarioRegistry;
using oic::eval::SweepResult;
using oic::eval::SweepSpec;

std::string join_or_all(const std::vector<std::string>& items) {
  if (items.empty()) return "<all>";
  std::string out;
  for (const auto& s : items) {
    if (!out.empty()) out += ",";
    out += s;
  }
  return out;
}

void print_summary(const SweepSpec& spec, const SweepResult& result) {
  const bool faulted = result.faults.active();
  std::printf("\n%-10s %-10s %-12s %-14s %10s %10s %10s %5s\n", "plant", "scenario",
              "seed", "policy", "saving[%]", "skipped", "degraded", "safe");
  for (const auto& cell : result.cells) {
    const auto& r = cell.result;
    for (std::size_t p = 0; p < r.policy_names.size(); ++p) {
      // Fault-free: any excursion (X or XI) is a bug.  Faulted: only
      // leaving the hard safe set X is; XI excursions are degradation.
      const bool unsafe = faulted ? r.any_left_x[p] : r.any_violation[p];
      std::printf("%-10s %-10s %-12llu %-14s %10.2f %10.1f %10.1f %5s\n",
                  cell.plant.c_str(), cell.scenario.c_str(),
                  static_cast<unsigned long long>(cell.seed),
                  r.policy_names[p].c_str(), 100.0 * oic::mean(r.savings[p]),
                  r.mean_skipped[p], r.mean_degraded[p], unsafe ? "NO!" : "yes");
    }
  }
  if (faulted) {
    std::printf("\nfaults: %s (hard violations = leaving X; XI excursions are "
                "measured degradation)\n",
                result.faults.canonical().c_str());
  }
  std::printf("\nsweep: %zu cells, %zu episodes, %.2f s wall  |  %.1f episodes/s  |  "
              "%.0f ns/step\n",
              result.cells.size(), result.episodes, result.wall_s,
              result.episodes_per_s(), result.step_ns());
  std::printf("cases=%zu steps=%zu workers=%zu\n", spec.cases, spec.steps, spec.workers);
  std::printf("safety violations: %s (Theorem 1: must be none)\n",
              result.safety_violations ? "YES (BUG!)" : "none");
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();

  if (args.flag("help")) {
    std::printf("usage: oic_eval [--plant a,b] [--scenario a,b] [--policies a,b]\n"
                "                [--cases N] [--steps N] [--seeds a,b] [--workers N]\n"
                "                [--cert-dir DIR] [--faults SPEC] [--json PATH]\n"
                "                [--list]\n"
                "policies: always-run | bang-bang | periodic-N | burst:<k> | "
                "drl:<agent file>\n");
    print_registry(registry);
    oic::cliutil::print_fault_presets(registry);
    return 0;
  }
  if (args.flag("list")) {
    print_registry(registry);
    oic::cliutil::print_fault_presets(registry);
    return 0;
  }

  SweepSpec spec;
  std::string v;
  if (args.value("plant", v) || args.value("plants", v)) spec.plants = split_list(v);
  if (args.value("scenario", v) || args.value("scenarios", v)) {
    spec.scenarios = split_list(v);
  }
  if (args.value("policies", v)) spec.policies = split_list(v);
  if (!oic::cliutil::count_flag(args, "oic_eval", "cases", spec.cases) ||
      !oic::cliutil::count_flag(args, "oic_eval", "steps", spec.steps)) {
    return 1;
  }
  oic::cliutil::CommonOpts common;
  if (!oic::cliutil::parse_common(args, "oic_eval", common)) return 1;
  if (!common.seeds.empty()) spec.seeds = common.seeds;
  spec.workers = common.workers;
  spec.cert_dir = common.cert_dir;
  spec.faults = common.faults;

  if (!oic::cliutil::reject_unknown(args, "oic_eval")) return 1;

  try {
    std::printf("=== oic_eval sweep ===\n");
    std::printf("plants=%s scenarios=%s cases=%zu steps=%zu seeds=%zu workers=%zu\n",
                join_or_all(spec.plants).c_str(), join_or_all(spec.scenarios).c_str(),
                spec.cases, spec.steps, spec.seeds.size(), spec.workers);

    const SweepResult result = oic::eval::run_sweep(registry, spec);
    print_summary(spec, result);

    if (common.write_json &&
        !oic::cliutil::write_json_file("oic_eval", common.json_path,
                                       oic::eval::sweep_json(spec, result))) {
      return 1;
    }
    return result.safety_violations ? 1 : 0;
  } catch (const oic::Error& e) {
    std::fprintf(stderr, "oic_eval: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything escaping the oic::Error hierarchy (bad_alloc, filesystem
    // errors, ...) must still die with a diagnosable message and a
    // nonzero exit, never a raw terminate().
    std::fprintf(stderr, "oic_eval: unexpected error: %s\n", e.what());
    return 1;
  }
}
