/// \file oic_mc.cpp
/// Monte Carlo campaign driver over randomized scenario families.
///
///   oic_mc --plants acc --families mixed --policies bang-bang
///          --episodes 10000 --seed 7 --json campaign.json
///
/// Runs N-episode campaigns per (plant, family) cell through the blocked
/// streaming engine (src/mc): every episode samples a fresh scenario from
/// the family, statistics stream into Welford accumulators (no per-episode
/// storage), and the JSON report carries violation-rate Wilson intervals
/// and saving/cost normal intervals.  Results are bit-identical for any
/// --workers value and across --checkpoint resume boundaries; the whole
/// campaign is determined by --seed alone.
///
/// Flags (--key value and --key=value are both accepted):
///   --plant/--plants a,b     plants to campaign        (default: all)
///   --family/--families a,b  scenario families         (default: all standard)
///   --policies a,b           skip policies             (default: bang-bang,periodic-5)
///                            (always-run | bang-bang | periodic-N |
///                             burst:<k> | drl:<agent file>)
///   --episodes N             episodes per cell          (default 1000)
///   --steps N                steps per episode          (default 100)
///   --seed N                 campaign seed              (default 20200406)
///   --workers N              workers, 0 = auto          (default 0)
///   --block N                episodes per stats block   (default 256)
///   --cert-dir DIR           certificate cache (cert::Store)
///   --checkpoint PATH        stats checkpoint: written periodically,
///                            resumed from when present and matching
///   --checkpoint-blocks N    checkpoint cadence in blocks (default 64)
///   --max-blocks N           per-process block budget: stop after N blocks
///                            (resume later from --checkpoint); 0 = run all
///   --faults SPEC            network fault model: a preset id ("lossy",
///                            ...) or the key:value grammar, e.g.
///                            meas_drop:0.05,meas_delay:2,act_drop:0.02,hold
///                            (default: off -- bit-identical legacy runs).
///                            Part of the checkpoint fingerprint.
///   --json PATH              write the JSON document
///   --list                   list plants/families/fault presets and exit
///
/// Rare-event mode (see docs/mc_stats.md):
///   --splitting              estimate violation probabilities by fixed-
///                            effort multilevel splitting instead of crude
///                            counting (per cell: baseline + each policy;
///                            the test-only "rare1d" plant runs its single
///                            analytic unit and reports p_true)
///   --falsify                per-cell cross-entropy falsification: search
///                            the family's MixtureProfile space for the
///                            most dangerous profile; with --splitting its
///                            peak-level quantiles seed the ladder
///   --levels a,b,c           explicit splitting ladder (strictly
///                            increasing negative distances-to-boundary);
///                            default: falsify-seeded or adaptive
///   --split-trials N         clones per stage per batch    (default 256)
///   --split-batches N        independent replicate runs whose empirical
///                            spread forms the combined CI  (default 16)
///   --split-stages N         adaptive stage cap per batch  (default 24)
///   --split-quantile Q       adaptive survivor fraction    (default 0.25)
///   --falsify-iterations N   CE refits                     (default 6)
///   --falsify-population N   CE candidates per refit       (default 24)
///   --falsify-elites N       CE elite refit sample         (default 6)
///   --falsify-probes N       CRN probe episodes/candidate  (default 3)
///
/// Exit status: 0 on a clean campaign, 1 on safety violations or bad usage.
/// Under --faults, "safety violation" means leaving the hard safe set X;
/// XI excursions are the measured degradation, reported not fatal.  In
/// rare-event mode a violation is a falsifier counterexample or a real
/// plant's splitting run reaching the boundary with a surviving clone
/// (the rare1d bed's violations are the point, not a bug).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "common/error.hpp"
#include "mc/campaign.hpp"

namespace {

using oic::cliutil::Args;
using oic::cliutil::parse_count;
using oic::cliutil::split_list;
using oic::eval::ScenarioRegistry;
using oic::mc::CampaignResult;
using oic::mc::CampaignSpec;

std::string join_or_all(const std::vector<std::string>& items) {
  if (items.empty()) return "<all>";
  std::string out;
  for (const auto& s : items) {
    if (!out.empty()) out += ",";
    out += s;
  }
  return out;
}

void print_families(const ScenarioRegistry& registry) {
  std::printf("registered plants (campaigns sample scenario families inside each "
              "plant's signal band):\n");
  for (const auto& pid : registry.plant_ids()) {
    const auto& info = registry.plant(pid);
    std::printf("  %-10s signal band [%g, %g]\n", info.id.c_str(),
                info.signal_band.lo, info.signal_band.hi);
  }
  std::printf("standard families:\n");
  const oic::eval::SignalBand band{-1.0, 1.0};
  for (const auto& fam : oic::mc::standard_families(band)) {
    std::printf("  %-15s %s\n", fam.id().c_str(), fam.description().c_str());
  }
}

void print_split_summary(const CampaignSpec& spec, const CampaignResult& result) {
  std::printf("\n%-10s %-15s %-14s %6s %9s %12s %26s\n", "plant", "family",
              "unit", "stages", "episodes", "p_hat", "ci95");
  for (const auto& cell : result.split_cells) {
    if (cell.falsified) {
      std::printf("%-10s %-15s %-14s worst_level=%.4g %s (%llu episodes)\n",
                  cell.plant.c_str(), cell.family.c_str(), "falsify",
                  cell.falsify.worst_level,
                  cell.falsify.violation ? "VIOLATION" : "no violation",
                  static_cast<unsigned long long>(cell.falsify.episodes));
    }
    for (const auto& unit : cell.units) {
      const oic::mc::SplitState& st = unit.state;
      const oic::Interval ci = st.ci95();
      std::printf("%-10s %-15s %-14s %6llu %9llu %12.4e [%10.4e, %10.4e]%s%s\n",
                  cell.plant.c_str(), cell.family.c_str(), unit.policy.c_str(),
                  static_cast<unsigned long long>(st.stages_done()),
                  static_cast<unsigned long long>(st.episodes()), st.p_hat(),
                  ci.lo, ci.hi,
                  st.extinct_batches()
                      ? (" (" + std::to_string(st.extinct_batches()) +
                         " extinct batches)")
                            .c_str()
                      : "",
                  st.done ? "" : " (in progress)");
    }
    if (cell.p_true >= 0.0) {
      std::printf("%-10s %-15s %-14s p_true=%.4e (analytic ground truth)\n",
                  cell.plant.c_str(), cell.family.c_str(), "ground-truth",
                  cell.p_true);
    }
  }
  std::printf("\ncampaign: %zu cells, %llu episodes aggregated "
              "(%llu run now, %llu stages resumed), %.2f s wall\n",
              result.split_cells.size(),
              static_cast<unsigned long long>(result.episodes),
              static_cast<unsigned long long>(result.episodes_run),
              static_cast<unsigned long long>(result.resumed_blocks),
              result.wall_s);
  std::printf(
      "split: trials=%llu batches=%llu stages<=%llu quantile=%g workers=%zu\n",
      static_cast<unsigned long long>(spec.split_trials),
      static_cast<unsigned long long>(spec.split_batches),
      static_cast<unsigned long long>(spec.split_stages), spec.split_quantile,
      spec.workers);
  std::printf("safety violations: %s\n",
              result.safety_violations ? "YES (BUG!)" : "none");
}

void print_summary(const CampaignSpec& spec, const CampaignResult& result) {
  if (spec.splitting || spec.falsify) {
    print_split_summary(spec, result);
    return;
  }
  const bool faulted = result.faults.active();
  std::printf("\n%-10s %-15s %-14s %12s %22s %10s %10s %12s\n", "plant", "family",
              "policy", "saving[%]", "ci95[%]", "skipped", "degraded", "viol-ub95");
  for (const auto& cell : result.cells) {
    for (const auto& ps : cell.policies) {
      const oic::Interval saving = oic::normal_interval(ps.saving);
      const oic::Interval wilson = oic::wilson_interval(ps.violations, ps.episodes);
      std::printf("%-10s %-15s %-14s %12.2f [%8.2f, %8.2f] %10.1f %10.1f %12.2e\n",
                  cell.plant.c_str(), cell.family.c_str(), ps.name.c_str(),
                  100.0 * ps.saving.mean(), 100.0 * saving.lo, 100.0 * saving.hi,
                  ps.skipped.mean(), ps.degraded.mean(), wilson.hi);
    }
  }
  if (faulted) {
    std::printf("\nfaults: %s (hard violations = leaving X; XI excursions are "
                "measured degradation)\n",
                result.faults.canonical().c_str());
  }
  std::printf("\ncampaign: %zu cells, %llu episodes aggregated "
              "(%llu run now, %llu blocks resumed), %.2f s wall  |  "
              "%.1f episodes/s  |  %.0f ns/step\n",
              result.cells.size(), static_cast<unsigned long long>(result.episodes),
              static_cast<unsigned long long>(result.episodes_run),
              static_cast<unsigned long long>(result.resumed_blocks), result.wall_s,
              result.episodes_per_s(), result.step_ns());
  std::printf("episodes/cell=%llu steps=%zu block=%llu workers=%zu\n",
              static_cast<unsigned long long>(spec.episodes), spec.steps,
              static_cast<unsigned long long>(spec.block), spec.workers);
  std::printf("safety violations: %s (Theorem 1: must be none)\n",
              result.safety_violations ? "YES (BUG!)" : "none");
}

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();

  if (args.flag("help")) {
    std::printf(
        "usage: oic_mc [--plants a,b] [--families a,b] [--policies a,b]\n"
        "              [--episodes N] [--steps N] [--seed N] [--workers N]\n"
        "              [--block N] [--cert-dir DIR] [--checkpoint PATH]\n"
        "              [--checkpoint-blocks N] [--max-blocks N] [--faults SPEC]\n"
        "              [--splitting] [--falsify] [--levels a,b,c]\n"
        "              [--split-trials N] [--split-batches N] [--split-stages N]\n"
        "              [--split-quantile Q]\n"
        "              [--falsify-iterations N] [--falsify-population N]\n"
        "              [--falsify-elites N] [--falsify-probes N]\n"
        "              [--json PATH] [--list]\n"
        "policies: always-run | bang-bang | periodic-N | burst:<k> | "
        "drl:<agent file>\n");
    print_families(registry);
    oic::cliutil::print_fault_presets(registry);
    return 0;
  }
  if (args.flag("list")) {
    print_families(registry);
    oic::cliutil::print_fault_presets(registry);
    return 0;
  }

  CampaignSpec spec;
  std::string v;
  if (args.value("plant", v) || args.value("plants", v)) spec.plants = split_list(v);
  if (args.value("family", v) || args.value("families", v)) {
    spec.families = split_list(v);
  }
  if (args.value("policies", v)) spec.policies = split_list(v);
  if (!oic::cliutil::u64_flag(args, "oic_mc", "episodes", spec.episodes) ||
      !oic::cliutil::count_flag(args, "oic_mc", "steps", spec.steps) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "block", spec.block) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "checkpoint-blocks",
                              spec.checkpoint_blocks) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "max-blocks", spec.max_blocks)) {
    return 1;
  }
  oic::cliutil::CommonOpts common;
  if (!oic::cliutil::parse_common(args, "oic_mc", common)) return 1;
  if (common.seeds.size() > 1) {
    std::fprintf(stderr, "oic_mc: --seed expects a single campaign seed\n");
    return 1;
  }
  if (!common.seeds.empty()) spec.seed = common.seeds.front();
  spec.workers = common.workers;
  spec.cert_dir = common.cert_dir;
  spec.faults = common.faults;
  (void)args.value("checkpoint", spec.checkpoint);

  spec.splitting = args.flag("splitting");
  spec.falsify = args.flag("falsify");
  if (!oic::cliutil::u64_flag(args, "oic_mc", "split-trials", spec.split_trials) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "split-batches",
                              spec.split_batches) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "split-stages", spec.split_stages) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "falsify-iterations",
                              spec.falsify_iterations) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "falsify-population",
                              spec.falsify_population) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "falsify-elites",
                              spec.falsify_elites) ||
      !oic::cliutil::u64_flag(args, "oic_mc", "falsify-probes",
                              spec.falsify_probes)) {
    return 1;
  }
  if (args.value("levels", v)) {
    try {
      spec.levels = oic::mc::parse_levels(v);
    } catch (const oic::Error& e) {
      std::fprintf(stderr, "oic_mc: --levels: %s\n", e.what());
      return 1;
    }
  }
  if (args.value("split-quantile", v)) {
    char* end = nullptr;
    const double q = std::strtod(v.c_str(), &end);
    if (end != v.c_str() + v.size() || !(q > 0.0 && q < 1.0)) {
      std::fprintf(stderr,
                   "oic_mc: --split-quantile expects a number in (0, 1), got "
                   "'%s'\n",
                   v.c_str());
      return 1;
    }
    spec.split_quantile = q;
  }

  if (!oic::cliutil::reject_unknown(args, "oic_mc")) return 1;

  try {
    std::printf("=== oic_mc campaign ===\n");
    std::printf("plants=%s families=%s episodes/cell=%llu steps=%zu seed=%llu "
                "workers=%zu\n",
                join_or_all(spec.plants).c_str(), join_or_all(spec.families).c_str(),
                static_cast<unsigned long long>(spec.episodes), spec.steps,
                static_cast<unsigned long long>(spec.seed), spec.workers);

    const CampaignResult result = oic::mc::run_campaign(registry, spec);
    print_summary(spec, result);

    if (common.write_json &&
        !oic::cliutil::write_json_file("oic_mc", common.json_path,
                                       oic::mc::campaign_json(spec, result))) {
      return 1;
    }
    return result.safety_violations ? 1 : 0;
  } catch (const oic::Error& e) {
    std::fprintf(stderr, "oic_mc: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything escaping the oic::Error hierarchy (bad_alloc, filesystem
    // errors, ...) must still die with a diagnosable message and a
    // nonzero exit, never a raw terminate().
    std::fprintf(stderr, "oic_mc: unexpected error: %s\n", e.what());
    return 1;
  }
}
