/// \file bench_throughput.cpp
/// Episode-throughput benchmark: the Fig-4-style policy-comparison sweep
/// (paired fuel savings of skipping policies vs the always-run baseline)
/// timed three ways:
///
///   legacy          -- the pre-PR path: IntermittentController rebuilt and
///                      re-verified per episode, the MPC LP rebuilt and
///                      converted from scratch every step
///                      (RmpcConfig::reuse_lp = false + harness
///                      compare_policies);
///   engine-serial   -- EpisodeEngine contexts (hoisted construction,
///                      prepared LP, warm-started dual simplex), 1 worker;
///   engine-parallel -- the same sharded over a thread pool.
///
/// Reports episodes/sec and per-step latency, checks that the parallel
/// sweep is bit-identical to the serial one, and writes machine-readable
/// BENCH_throughput.json for the performance trajectory.
///
/// Flags: --cases=N (default 24), --steps=N (default 100), --workers=N
/// (default hardware), --json=PATH (default ./BENCH_throughput.json).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <system_error>
#include <thread>

#include "acc/engine.hpp"
#include "acc/harness.hpp"
#include "acc/scenarios.hpp"
#include "bench_kernels.hpp"
#include "bench_util.hpp"
#include "cert/io.hpp"
#include "cert/store.hpp"
#include "common/buildinfo.hpp"
#include "common/jsonout.hpp"
#include "common/stats.hpp"
#include "core/policy.hpp"
#include "eval/registry.hpp"
#include "mc/campaign.hpp"
#include "rl/dqn.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Timing {
  double wall_s = 0.0;
  std::size_t episodes = 0;
  std::size_t steps = 0;
  double episodes_per_s() const { return episodes / wall_s; }
  double step_ns() const { return 1e9 * wall_s / static_cast<double>(steps); }
};

void print_timing(const char* label, const Timing& t) {
  std::printf("%-16s : %8.2f s wall  |  %8.1f episodes/s  |  %9.0f ns/step\n", label,
              t.wall_s, t.episodes_per_s(), t.step_ns());
}

const char* json_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return "BENCH_throughput.json";
}

/// DQN minibatch-update micro-bench: the identical training stream (same
/// seeds, same transitions) through the per-sample and the batched
/// forward/backward paths.  The batched path must be bit-identical -- the
/// reported max |weight delta| is expected to be exactly 0 -- and faster
/// (it replaces three allocating forwards plus a freshly allocated
/// Gradients per transition with fused batched GEMM over reused buffers).
struct TrainBenchResult {
  double per_sample_us = 0.0;  ///< mean us per observe() once learning runs
  double batched_us = 0.0;
  double speedup = 0.0;
  double max_weight_delta = 0.0;
};

TrainBenchResult bench_train_minibatch(std::size_t updates) {
  using oic::Rng;
  using oic::linalg::Vector;

  oic::rl::DqnConfig cfg;
  cfg.hidden = {64, 64};
  cfg.min_replay = 128;
  cfg.batch_size = 32;
  const std::size_t state_dim = 8;  // a 2-state plant with memory r = 3
  const std::size_t warmup = cfg.min_replay;

  const auto run = [&](bool batched, double& mean_us) {
    oic::rl::DqnConfig c = cfg;
    c.batched = batched;
    oic::rl::DoubleDqn agent(state_dim, 2, c, Rng(20200607));
    Rng env(99);
    Vector s(state_dim);
    // Feed identical synthetic transitions; time only the learning phase.
    const auto feed = [&](std::size_t count) {
      for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t k = 0; k < state_dim; ++k) s[k] = env.uniform(-1.0, 1.0);
        const int a = agent.select_action(s);
        oic::rl::Transition t;
        t.state = s;
        t.action = a;
        t.reward = env.uniform(-1.0, 1.0);
        t.next_state = s;
        t.terminal = false;
        agent.observe(std::move(t));
      }
    };
    feed(warmup);
    const auto t0 = Clock::now();
    feed(updates);
    mean_us = 1e6 * seconds_since(t0) / static_cast<double>(updates);
    return agent;
  };

  TrainBenchResult out;
  const auto per_sample = run(false, out.per_sample_us);
  const auto batched = run(true, out.batched_us);
  out.speedup = out.per_sample_us / out.batched_us;
  for (std::size_t l = 0; l < per_sample.online().num_layers(); ++l) {
    const auto& wa = per_sample.online().weight(l);
    const auto& wb = batched.online().weight(l);
    for (std::size_t i = 0; i < wa.rows(); ++i) {
      for (std::size_t j = 0; j < wa.cols(); ++j) {
        out.max_weight_delta =
            std::max(out.max_weight_delta, std::abs(wa(i, j) - wb(i, j)));
      }
    }
    const auto& ba = per_sample.online().bias(l);
    const auto& bb = batched.online().bias(l);
    for (std::size_t i = 0; i < ba.size(); ++i) {
      out.max_weight_delta = std::max(out.max_weight_delta, std::abs(ba[i] - bb[i]));
    }
  }
  return out;
}

/// Certificate cold-start bench: fresh offline synthesis (the LP-bound
/// path every process start used to pay per plant) vs loading the cached
/// `oic-cert v1` file (the --cert-dir path).  The loaded certificate must
/// be bit-identical to fresh synthesis -- that is the golden-load contract
/// the eval/train layers rely on for reproducibility.
struct CertBenchResult {
  std::size_t plants = 0;
  double synth_ms = 0.0;  ///< total fresh-synthesis time over all plants
  double load_ms = 0.0;   ///< total cache-load time over all plants
  double speedup = 0.0;
  bool bit_identical = true;
};

CertBenchResult bench_cert_cold_start() {
  namespace fs = std::filesystem;
  const auto& registry = oic::eval::ScenarioRegistry::builtin();
  // Scratch store under the system temp dir, suffixed per process: the
  // bench may run from the build dir or the repo root and must not litter
  // either, and concurrent / multi-user runs must not collide on a shared
  // path.
  const std::string dir =
      (fs::temp_directory_path() /
       ("oic-bench-cert-cache-" + std::to_string(::getpid())))
          .string();
  std::error_code ec;
  fs::remove_all(dir, ec);  // measure a true cold cache
  const oic::cert::Store store(dir);

  CertBenchResult out;
  for (const auto& pid : registry.production_plant_ids()) {
    const oic::cert::PlantModel model = registry.make_model(pid);
    auto t0 = Clock::now();
    const oic::cert::PlantCertificate fresh = oic::cert::synthesize(model);
    out.synth_ms += 1e3 * seconds_since(t0);
    oic::cert::save_certificate_file(fresh, store.path_for(model));

    t0 = Clock::now();
    const oic::cert::PlantCertificate loaded = store.get(model);  // cache hit
    out.load_ms += 1e3 * seconds_since(t0);

    out.bit_identical = out.bit_identical && oic::cert::bit_equal(fresh, loaded);
    ++out.plants;
  }
  fs::remove_all(dir, ec);
  out.speedup = out.synth_ms / out.load_ms;
  return out;
}

/// Monte-Carlo campaign bench: randomized-scenario episode throughput
/// through the blocked streaming engine (src/mc), serial vs sharded, with
/// the worker-count bit-identity contract checked on the full statistics.
struct McBenchResult {
  std::uint64_t episodes = 0;  ///< episode runs per campaign (incl. baseline)
  double serial_s = 0.0;
  double parallel_s = 0.0;
  double parallel_episodes_per_s = 0.0;
  double step_ns = 0.0;
  bool bit_identical = true;
  bool violations = false;
};

McBenchResult bench_mc_campaign(std::uint64_t episodes, std::size_t steps,
                                std::size_t workers) {
  oic::mc::CampaignSpec spec;
  spec.plants = {"toy2d"};
  spec.families = {"mixed"};
  spec.policies = {"bang-bang", "periodic-5"};
  spec.episodes = episodes;
  spec.steps = steps;
  spec.seed = 20200406;
  spec.block = 64;

  const auto& registry = oic::eval::ScenarioRegistry::builtin();
  McBenchResult out;

  spec.workers = 1;
  auto t0 = Clock::now();
  const auto serial = oic::mc::run_campaign(registry, spec);
  out.serial_s = seconds_since(t0);

  spec.workers = workers;
  t0 = Clock::now();
  const auto parallel = oic::mc::run_campaign(registry, spec);
  out.parallel_s = seconds_since(t0);

  out.episodes = parallel.episodes;
  out.parallel_episodes_per_s = parallel.episodes_per_s();
  out.step_ns = parallel.step_ns();
  out.violations = serial.safety_violations || parallel.safety_violations;

  const auto same = [](const oic::mc::PolicyStats& a, const oic::mc::PolicyStats& b) {
    const auto welford_eq = [](const oic::Welford& x, const oic::Welford& y) {
      return x.count() == y.count() && x.mean() == y.mean() && x.m2() == y.m2() &&
             (x.count() == 0 || (x.min() == y.min() && x.max() == y.max()));
    };
    return a.violations == b.violations && a.episodes == b.episodes &&
           welford_eq(a.saving, b.saving) && welford_eq(a.cost, b.cost) &&
           welford_eq(a.skipped, b.skipped);
  };
  out.bit_identical = serial.cells.size() == parallel.cells.size();
  for (std::size_t c = 0; out.bit_identical && c < serial.cells.size(); ++c) {
    const auto& sa = serial.cells[c];
    const auto& pa = parallel.cells[c];
    out.bit_identical = same(sa.baseline, pa.baseline) &&
                        sa.policies.size() == pa.policies.size();
    for (std::size_t p = 0; out.bit_identical && p < sa.policies.size(); ++p) {
      out.bit_identical = same(sa.policies[p], pa.policies[p]);
    }
  }
  return out;
}

/// Serve-layer bench: the multi-session monitor service under
/// scenario-family traffic (src/serve).  Loadgen clients replay
/// mc::ScenarioFamily disturbances against a loopback-socket Server at
/// 10k+ concurrent sessions -- the measured path includes the real wire
/// (serialize, TCP, parse) -- with the tick sharded across two workers and
/// half the fleet running certified burst:<k> sessions.  Reported are
/// decision-latency percentiles (split into submit->enqueue and
/// enqueue->response components) and the sustained session rate.  The
/// batched decision path must be bit-identical to the per-session
/// IntermittentController path including its burst branch
/// (check_batched_parity compares z/forced/input/state bitwise).
struct ServeBenchResult {
  std::size_t sessions = 0;
  std::size_t steps = 0;
  std::size_t clients = 0;
  std::string transport;
  std::size_t tick_workers = 0;
  std::size_t pipeline_window = 0;
  std::size_t burst_sessions = 0;
  std::uint64_t decisions = 0;
  std::uint64_t errors = 0;
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double submit_p50_ms = 0.0;
  double submit_p99_ms = 0.0;
  double wait_p50_ms = 0.0;
  double wait_p99_ms = 0.0;
  std::vector<oic::serve::TickLatency> tick_latency;
  double decisions_per_s = 0.0;
  double sessions_per_s = 0.0;
  bool bit_identical = true;
  std::size_t parity_decisions = 0;
  std::string parity_detail;
};

ServeBenchResult bench_serve(std::size_t sessions, std::size_t steps,
                             std::size_t workers, std::uint64_t seed) {
  const auto& registry = oic::eval::ScenarioRegistry::builtin();
  ServeBenchResult out;

  oic::serve::ServiceConfig cfg;
  cfg.workers = workers;
  // Two tick shards: the bang-bang/burst policy mix below forms two
  // (plant, cert, policy) groups, so each fused pass genuinely splits.
  cfg.tick_workers = 2;
  oic::serve::LoadgenConfig lg;
  lg.plants = {"toy2d"};
  lg.policy = "bang-bang,burst:32";
  lg.transport = "socket";
  lg.sessions = sessions;
  lg.steps = steps;
  // Two clients in lock-step (window 1): on a shared-core box more client
  // threads or deeper pipelining only add queueing delay to the measured
  // round trip without raising the decision rate.
  lg.clients = 2;
  lg.pipeline_window = 1;
  lg.max_batch = 512;
  lg.seed = seed;
  {
    oic::serve::Server server(registry, cfg);
    const oic::serve::LoadgenResult res =
        oic::serve::run_loadgen(server, registry, lg);
    server.shutdown();
    out.sessions = res.sessions;
    out.steps = res.steps;
    out.clients = lg.clients;
    out.transport = lg.transport;
    out.tick_workers = cfg.tick_workers;
    out.pipeline_window = lg.pipeline_window;
    out.burst_sessions = res.burst_sessions;
    out.decisions = res.decisions;
    out.errors = res.errors;
    out.wall_s = res.wall_s;
    out.p50_ms = res.p50_ms;
    out.p99_ms = res.p99_ms;
    out.submit_p50_ms = res.submit_p50_ms;
    out.submit_p99_ms = res.submit_p99_ms;
    out.wait_p50_ms = res.wait_p50_ms;
    out.wait_p99_ms = res.wait_p99_ms;
    out.tick_latency = res.tick_latency;
    out.decisions_per_s = res.decisions_per_s;
    out.sessions_per_s = res.sessions_per_s;
  }

  // Small but adversarial parity census: interleaved sessions, policies
  // round-robin across the monitor-only, periodic, certified-burst, and
  // forced regimes.
  const oic::serve::ParityReport parity = oic::serve::check_batched_parity(
      registry, "toy2d", {"bang-bang", "periodic-3", "burst:4"}, 8, 40, seed);
  out.bit_identical = parity.identical;
  out.parity_decisions = parity.decisions;
  out.parity_detail = parity.detail;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oic;
  // Unparsable flag values come back as 0; a zero-case or zero-step sweep is
  // meaningless, so clamp rather than crash deep in the harness.
  const std::size_t cases =
      std::max<std::size_t>(1, benchutil::flag(argc, argv, "cases", 24));
  const std::size_t steps =
      std::max<std::size_t>(1, benchutil::flag(argc, argv, "steps", 100));
  const std::size_t workers = benchutil::flag(
      argc, argv, "workers",
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  const std::uint64_t seed = 20200406;

  std::printf("=== Episode throughput: policy-comparison sweep ===\n");
  std::printf("cases=%zu, steps/case=%zu, workers=%zu, policies=bang-bang+periodic-5\n\n",
              cases, steps, workers);

  // Per-sweep episode count: always-run baseline + 2 policies per case.
  const std::size_t episodes_per_sweep = cases * 3;
  const std::size_t steps_per_sweep = episodes_per_sweep * steps;

  // ---- Legacy path (pre-PR behavior) ----
  std::printf("[setup] building legacy AccCase (rebuild-every-step solver)...\n");
  control::RmpcConfig legacy_rmpc = acc::AccCase::default_rmpc();
  legacy_rmpc.reuse_lp = false;
  acc::AccCase acc_legacy({}, legacy_rmpc);
  const acc::Scenario scen = acc::fig4_scenario(acc_legacy.params());

  core::BangBangPolicy bb_legacy;
  core::PeriodicPolicy per_legacy(5);
  auto t0 = Clock::now();
  const auto cmp_legacy = acc::compare_policies(
      acc_legacy, scen, {&bb_legacy, &per_legacy}, cases, steps, seed);
  Timing legacy{seconds_since(t0), episodes_per_sweep, steps_per_sweep};
  print_timing("legacy", legacy);

  // ---- Engine paths ----
  std::printf("[setup] building engine AccCase (prepared LP + warm start)...\n");
  acc::AccCase acc_fast;
  const acc::PolicySetFactory factory = [] {
    std::vector<std::unique_ptr<core::SkipPolicy>> ps;
    ps.push_back(std::make_unique<core::BangBangPolicy>());
    ps.push_back(std::make_unique<core::PeriodicPolicy>(5));
    return ps;
  };

  acc::SweepConfig sweep;
  sweep.cases = cases;
  sweep.steps = steps;
  sweep.seed = seed;

  sweep.workers = 1;
  t0 = Clock::now();
  const auto cmp_serial = acc::compare_policies_parallel(acc_fast, scen, factory, sweep);
  Timing serial{seconds_since(t0), episodes_per_sweep, steps_per_sweep};
  print_timing("engine-serial", serial);

  sweep.workers = workers;
  t0 = Clock::now();
  const auto cmp_parallel =
      acc::compare_policies_parallel(acc_fast, scen, factory, sweep);
  Timing parallel{seconds_since(t0), episodes_per_sweep, steps_per_sweep};
  print_timing("engine-parallel", parallel);

  // ---- Parallel == serial, bit for bit ----
  bool identical = cmp_serial.savings.size() == cmp_parallel.savings.size();
  for (std::size_t p = 0; identical && p < cmp_serial.savings.size(); ++p) {
    identical = cmp_serial.savings[p] == cmp_parallel.savings[p] &&
                cmp_serial.mean_skipped[p] == cmp_parallel.mean_skipped[p];
  }

  // ---- Result agreement between paths ----
  // legacy/engine trajectories may differ where the MPC LP has multiple
  // optima (the warm-started dual simplex is free to return another
  // argmin), so savings agree closely but not bitwise.
  double max_delta = 0.0;
  for (std::size_t p = 0; p < cmp_legacy.savings.size(); ++p) {
    for (std::size_t c = 0; c < cases; ++c) {
      max_delta = std::max(max_delta,
                           std::abs(cmp_legacy.savings[p][c] - cmp_serial.savings[p][c]));
    }
  }

  const double speedup_serial = legacy.wall_s / serial.wall_s;
  const double speedup_parallel = legacy.wall_s / parallel.wall_s;
  benchutil::rule('=');
  std::printf("speedup (engine-serial  vs legacy): %6.2fx\n", speedup_serial);
  std::printf("speedup (engine-parallel vs legacy): %6.2fx  (%zu workers)\n",
              speedup_parallel, workers);
  std::printf("parallel bit-identical to serial  : %s\n",
              identical ? "yes" : "NO (BUG!)");
  std::printf("max |saving delta| legacy vs engine: %.2e\n", max_delta);
  for (std::size_t p = 0; p < cmp_serial.policy_names.size(); ++p) {
    std::printf("  %-12s mean saving: engine %6.2f %% (legacy %6.2f %%), "
                "mean skipped %5.1f\n",
                cmp_serial.policy_names[p].c_str(), 100.0 * mean(cmp_serial.savings[p]),
                100.0 * mean(cmp_legacy.savings[p]), cmp_serial.mean_skipped[p]);
  }
  bool violation = false;
  for (bool v : cmp_serial.any_violation) violation = violation || v;
  for (bool v : cmp_legacy.any_violation) violation = violation || v;
  std::printf("safety violations: %s (Theorem 1: must be none)\n\n",
              violation ? "YES (BUG!)" : "none");

  // ---- DQN minibatch path: per-sample vs batched ----
  // Clamp like cases/steps above: zero updates would divide by zero and
  // leak inf/nan into the JSON.
  const std::size_t train_updates =
      std::max<std::size_t>(1, benchutil::flag(argc, argv, "train-updates", 600));
  std::printf("=== DQN minibatch update: per-sample vs batched ===\n");
  const TrainBenchResult train = bench_train_minibatch(train_updates);
  std::printf("per-sample : %8.1f us/update\n", train.per_sample_us);
  std::printf("batched    : %8.1f us/update   (%0.2fx speedup)\n", train.batched_us,
              train.speedup);
  std::printf("max |weight delta| batched vs per-sample: %.3e (must be 0)\n\n",
              train.max_weight_delta);
  const bool train_identical = train.max_weight_delta == 0.0;

  // ---- Certificate cold start: offline synthesis vs cache load ----
  std::printf("=== Certificate cold start: synthesize vs load (all plants) ===\n");
  const CertBenchResult cert = bench_cert_cold_start();
  std::printf("synthesize : %8.1f ms total (%zu plants)\n", cert.synth_ms, cert.plants);
  std::printf("cache load : %8.2f ms total   (%0.0fx speedup)\n", cert.load_ms,
              cert.speedup);
  std::printf("loaded certificates bit-identical to synthesis: %s\n\n",
              cert.bit_identical ? "yes" : "NO (BUG!)");

  // ---- Monte-Carlo campaign: randomized-scenario throughput ----
  const std::uint64_t mc_episodes =
      std::max<std::uint64_t>(1, benchutil::flag(argc, argv, "mc-episodes", 200));
  std::printf("=== MC campaign: randomized scenarios, streaming stats ===\n");
  const McBenchResult mc = bench_mc_campaign(mc_episodes, steps, workers);
  std::printf("serial     : %8.2f s   |   parallel: %8.2f s (%zu workers)\n",
              mc.serial_s, mc.parallel_s, workers);
  std::printf("throughput : %8.1f episodes/s  |  %9.0f ns/step (parallel)\n",
              mc.parallel_episodes_per_s, mc.step_ns);
  std::printf("stats bit-identical across worker counts: %s\n",
              mc.bit_identical ? "yes" : "NO (BUG!)");
  std::printf("campaign safety violations: %s\n\n",
              mc.violations ? "YES (BUG!)" : "none");

  // ---- Serve layer: multi-session monitor service ----
  const std::size_t serve_sessions =
      std::max<std::size_t>(1, benchutil::flag(argc, argv, "serve-sessions", 10000));
  const std::size_t serve_steps =
      std::max<std::size_t>(1, benchutil::flag(argc, argv, "serve-steps", 200));
  std::printf("=== Serve: batched monitor service, %zu concurrent sessions ===\n",
              serve_sessions);
  const ServeBenchResult srv = bench_serve(serve_sessions, serve_steps, workers, seed);
  std::printf("loadgen    : %zu sessions x %zu steps, %zu clients, %.2f s wall\n",
              srv.sessions, srv.steps, srv.clients, srv.wall_s);
  std::printf("transport  : %s  |  tick workers %zu  |  window %zu  |  "
              "%zu burst sessions\n",
              srv.transport.c_str(), srv.tick_workers, srv.pipeline_window,
              srv.burst_sessions);
  std::printf("latency    : p50 %8.3f ms  |  p99 %8.3f ms (submit -> await; "
              "submit p50 %.3f ms, wait p50 %.3f ms)\n",
              srv.p50_ms, srv.p99_ms, srv.submit_p50_ms, srv.wait_p50_ms);
  // The per-tick table is dominated by the startup transient; past it the
  // rows repeat, so stdout shows the head and the JSON carries the rest.
  const std::size_t tick_rows = std::min<std::size_t>(srv.tick_latency.size(), 12);
  for (std::size_t i = 0; i < tick_rows; ++i) {
    const auto& tl = srv.tick_latency[i];
    std::printf("  tick %2zu  : p50 %8.3f ms  |  p99 %8.3f ms  |  max %8.3f ms "
                "(%zu round trips)\n",
                tl.tick, tl.p50_ms, tl.p99_ms, tl.max_ms, tl.samples);
  }
  if (tick_rows < srv.tick_latency.size()) {
    std::printf("  ... %zu more ticks in the JSON\n",
                srv.tick_latency.size() - tick_rows);
  }
  std::printf("throughput : %8.0f decisions/s  |  %8.0f sessions/s sustained\n",
              srv.decisions_per_s, srv.sessions_per_s);
  std::printf("batched decisions bit-identical to per-session path: %s "
              "(%zu decision pairs)\n",
              srv.bit_identical ? "yes" : "NO (BUG!)", srv.parity_decisions);
  if (!srv.bit_identical) {
    std::printf("  first divergence: %s\n", srv.parity_detail.c_str());
  }
  std::printf("loadgen errors: %llu (must be 0)\n\n",
              static_cast<unsigned long long>(srv.errors));

  // ---- Kernel microbench: per-ISA dispatch table ----
  // A short budget keeps the smoke run fast; the standalone bench_kernels
  // binary takes --budget-ms for the committed reference numbers.
  const std::size_t kernel_budget_ms =
      std::max<std::size_t>(1, benchutil::flag(argc, argv, "kernel-budget-ms", 10));
  std::printf("=== Kernels: per-ISA dispatch table (budget %zu ms) ===\n",
              kernel_budget_ms);
  const std::vector<benchkernels::KernelStat> kernels =
      benchkernels::run(static_cast<double>(kernel_budget_ms));
  benchkernels::print(kernels);
  std::printf("\n");

  // ---- JSON ----
  const char* json_path = json_flag(argc, argv);
  bool json_written = false;
  {
    using oic::jsonout::append_format;
    oic::jsonout::Doc doc("throughput");
    std::string& out = doc.body();
    append_format(out,
                  "  \"config\": {\"cases\": %zu, \"steps\": %zu, \"workers\": %zu, "
                  "\"policies\": [\"bang-bang\", \"periodic-5\"], \"seed\": %llu},\n",
                  cases, steps, workers, static_cast<unsigned long long>(seed));
    auto emit = [&](const char* k, const Timing& t) {
      append_format(out,
                    "  \"%s\": {\"wall_s\": %.6f, \"episodes\": %zu, "
                    "\"episodes_per_s\": %.3f, \"step_ns\": %.1f},\n",
                    k, t.wall_s, t.episodes, t.episodes_per_s(), t.step_ns());
    };
    emit("legacy", legacy);
    emit("engine_serial", serial);
    emit("engine_parallel", parallel);
    append_format(out, "  \"speedup_serial\": %.3f,\n", speedup_serial);
    append_format(out, "  \"speedup_parallel\": %.3f,\n", speedup_parallel);
    append_format(out, "  \"parallel_bit_identical\": %s,\n",
                  identical ? "true" : "false");
    append_format(out, "  \"max_saving_delta_vs_legacy\": %.3e,\n", max_delta);
    append_format(out,
                  "  \"train_minibatch\": {\"updates\": %zu, \"per_sample_us\": %.2f, "
                  "\"batched_us\": %.2f, \"speedup\": %.3f, "
                  "\"max_weight_delta\": %.3e, \"bit_identical\": %s},\n",
                  train_updates, train.per_sample_us, train.batched_us, train.speedup,
                  train.max_weight_delta, train_identical ? "true" : "false");
    append_format(out,
                  "  \"cert_cold_start\": {\"plants\": %zu, \"synth_ms\": %.2f, "
                  "\"load_ms\": %.3f, \"speedup\": %.1f, \"bit_identical\": %s},\n",
                  cert.plants, cert.synth_ms, cert.load_ms, cert.speedup,
                  cert.bit_identical ? "true" : "false");
    append_format(out,
                  "  \"mc_campaign\": {\"episodes\": %llu, \"serial_s\": %.3f, "
                  "\"parallel_s\": %.3f, \"episodes_per_s\": %.1f, "
                  "\"step_ns\": %.1f, \"bit_identical\": %s, \"violations\": %s},\n",
                  static_cast<unsigned long long>(mc.episodes), mc.serial_s,
                  mc.parallel_s, mc.parallel_episodes_per_s, mc.step_ns,
                  mc.bit_identical ? "true" : "false",
                  mc.violations ? "true" : "false");
    append_format(out,
                  "  \"bench_serve\": {\"sessions\": %zu, \"steps\": %zu, "
                  "\"clients\": %zu, \"transport\": \"%s\", \"tick_workers\": %zu, "
                  "\"pipeline_window\": %zu, \"burst_sessions\": %zu, "
                  "\"decisions\": %llu, \"wall_s\": %.3f, "
                  "\"p50_ms\": %.6f, \"p99_ms\": %.6f, "
                  "\"submit_p50_ms\": %.6f, \"submit_p99_ms\": %.6f, "
                  "\"wait_p50_ms\": %.6f, \"wait_p99_ms\": %.6f, "
                  "\"decisions_per_s\": %.1f, "
                  "\"sessions_per_s\": %.1f, \"bit_identical\": %s, "
                  "\"errors\": %llu},\n",
                  srv.sessions, srv.steps, srv.clients, srv.transport.c_str(),
                  srv.tick_workers, srv.pipeline_window, srv.burst_sessions,
                  static_cast<unsigned long long>(srv.decisions), srv.wall_s,
                  srv.p50_ms, srv.p99_ms, srv.submit_p50_ms, srv.submit_p99_ms,
                  srv.wait_p50_ms, srv.wait_p99_ms,
                  srv.decisions_per_s, srv.sessions_per_s,
                  srv.bit_identical ? "true" : "false",
                  static_cast<unsigned long long>(srv.errors));
    out += "  \"serve_tick_latency_ms\": [";
    for (std::size_t i = 0; i < srv.tick_latency.size(); ++i) {
      const auto& tl = srv.tick_latency[i];
      append_format(out,
                    "%s{\"tick\": %zu, \"samples\": %zu, \"p50\": %.6f, "
                    "\"p99\": %.6f, \"max\": %.6f, \"submit_p50\": %.6f, "
                    "\"submit_p99\": %.6f, \"wait_p50\": %.6f, \"wait_p99\": %.6f}",
                    i ? ", " : "", tl.tick, tl.samples, tl.p50_ms, tl.p99_ms,
                    tl.max_ms, tl.submit_p50_ms, tl.submit_p99_ms, tl.wait_p50_ms,
                    tl.wait_p99_ms);
    }
    out += "],\n";
    oic::benchkernels::append_json(out, kernels);
    const std::string body = std::move(doc).finish(violation);
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      json_written = true;
      std::printf("wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "could not write %s\n", json_path);
    }
  }

  return (identical && train_identical && cert.bit_identical && mc.bit_identical &&
          srv.bit_identical && srv.errors == 0 && !mc.violations && !violation &&
          json_written)
             ? 0
             : 1;
}
