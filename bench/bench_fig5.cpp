/// \file bench_fig5.cpp
/// Reproduces Table I + Figure 5: fuel-consumption saving of the DRL-based
/// opportunistic intermittent control as the front-vehicle velocity range
/// shrinks (Ex.1 .. Ex.5), with random bounded acceleration |v'f| <= 20.
///
/// Paper's qualitative result: a smaller vf range is easier for the DQN to
/// learn and exploit, so the saving INCREASES monotonically from Ex.1
/// (vf in [30, 50]) to Ex.5 (vf in [39, 41]) -- roughly 7 % to 13 % on the
/// authors' SUMO setup.
///
/// Flags: --cases=N (default 100; paper 500), --episodes=N (default 100),
/// --steps=N (default 100).

#include <cstdio>

#include "bench_scenario_common.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace oic;
  const std::size_t cases = benchutil::flag(argc, argv, "cases", 100);
  const std::size_t episodes = benchutil::flag(argc, argv, "episodes", 200);
  const std::size_t steps = benchutil::flag(argc, argv, "steps", 100);

  std::printf("=== Table I + Figure 5: saving vs front-vehicle velocity range ===\n");
  std::printf("cases=%zu/scenario, steps=%zu, DQN episodes=%zu (scenarios in "
              "parallel)\n\n",
              cases, steps, episodes);

  const acc::AccParams params;
  std::vector<acc::Scenario> scenarios;
  for (int i = 1; i <= 5; ++i) scenarios.push_back(acc::range_scenario(i, params));

  const auto results =
      benchutil::evaluate_scenarios(scenarios, cases, episodes, steps, 515001);

  benchutil::rule('=');
  std::printf("%-6s %-16s %-14s %-14s %-12s %-6s\n", "Ex.", "range of vf",
              "DRL saving", "bang-bang", "skipped/100", "safe?");
  benchutil::rule();
  static const char* kRanges[5] = {"[30,50]", "[32.5,47.5]", "[35,45]", "[38,42]",
                                   "[39,41]"};
  bool any_violation = false;
  bool monotone = true;
  double prev = -1.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-6s %-16s %6.2f %%       %6.2f %%       %6.1f       %-6s\n",
                r.id.c_str(), kRanges[i], 100.0 * r.drl_saving, 100.0 * r.bb_saving,
                r.drl_skipped, r.violation ? "NO!" : "yes");
    any_violation |= r.violation;
    if (r.drl_saving < prev - 0.02) monotone = false;  // allow 2 pp noise
    prev = r.drl_saving;
  }
  benchutil::rule();
  std::printf("\npaper series (Fig. 5): ~7 %% -> ~13 %% increasing as the range "
              "narrows\n");
  std::printf("observed trend: %s\n",
              monotone ? "non-decreasing (matches the paper)" : "NOT monotone");
  return any_violation ? 1 : 0;
}
