/// \file bench_micro.cpp
/// Throughput micro-benchmarks of the substrate primitives every
/// experiment leans on: the simplex LP solver, polytope queries, Minkowski
/// operations, Fourier-Motzkin projection, and DQN inference/training
/// steps.  These establish the per-operation budgets behind the Sec. IV-A
/// computation-saving claim.

#include <benchmark/benchmark.h>

#include "common/random.hpp"
#include "linalg/lu.hpp"
#include "lp/simplex.hpp"
#include "poly/fourier_motzkin.hpp"
#include "poly/hpolytope.hpp"
#include "poly/ops.hpp"
#include "rl/dqn.hpp"

namespace {

using namespace oic;
using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

lp::Problem random_lp(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  lp::Problem p(n);
  Vector c(n);
  for (std::size_t j = 0; j < n; ++j) {
    c[j] = rng.uniform(-1, 1);
    p.set_bounds(j, 0.0, rng.uniform(0.5, 3.0));
  }
  p.set_objective(c);
  for (std::size_t i = 0; i < m; ++i) {
    Vector a(n);
    for (std::size_t j = 0; j < n; ++j) a[j] = rng.uniform(-1, 1);
    p.add_constraint(a, lp::Relation::kLessEq, rng.uniform(0.5, 2.0));
  }
  return p;
}

void BM_SimplexSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = random_lp(n, 2 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::solve(p));
  }
  state.SetLabel(std::to_string(n) + " vars, " + std::to_string(2 * n) + " rows");
}
BENCHMARK(BM_SimplexSolve)->Arg(10)->Arg(30)->Arg(60)->Arg(120);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix a(n, n);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += static_cast<double>(n);
    b[i] = rng.uniform(-1, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve(a, b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(4)->Arg(16)->Arg(64);

void BM_PolytopeContains(benchmark::State& state) {
  const HPolytope p = HPolytope::l1_ball(2, 3.0).intersect(
      HPolytope::sym_box(Vector{2.5, 2.5}));
  const Vector x{0.3, -0.7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.contains(x));
  }
}
BENCHMARK(BM_PolytopeContains);

void BM_PolytopeSupport(benchmark::State& state) {
  const HPolytope p = HPolytope::l1_ball(2, 3.0).intersect(
      HPolytope::sym_box(Vector{2.5, 2.5}));
  const Vector d{0.6, 0.8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.support(d));
  }
}
BENCHMARK(BM_PolytopeSupport);

void BM_RemoveRedundancy(benchmark::State& state) {
  // A 2-D set described by many rows, most redundant.
  const auto dirs = poly::uniform_directions_2d(static_cast<std::size_t>(state.range(0)));
  const HPolytope ball = HPolytope::sym_box(Vector{1, 1});
  const HPolytope p = poly::template_outer(2, dirs, [&](const Vector& d) {
    return ball.support(d).value + 0.5;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.remove_redundancy());
  }
}
BENCHMARK(BM_RemoveRedundancy)->Arg(16)->Arg(64);

void BM_MinkowskiSum2d(benchmark::State& state) {
  const HPolytope a = HPolytope::l1_ball(2, 1.0);
  const HPolytope b = HPolytope::sym_box(Vector{0.5, 0.25});
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly::minkowski_sum(a, b));
  }
}
BENCHMARK(BM_MinkowskiSum2d);

void BM_PontryaginDiff(benchmark::State& state) {
  const HPolytope a = HPolytope::sym_box(Vector{3, 3});
  const HPolytope b = HPolytope::l1_ball(2, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.pontryagin_diff(b));
  }
}
BENCHMARK(BM_PontryaginDiff);

void BM_FourierMotzkinProject(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Vector lo(dim), hi(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    lo[i] = -1.0;
    hi[i] = 1.0;
  }
  HPolytope box = HPolytope::box(lo, hi);
  // Couple the coordinates so elimination does real work.
  Rng rng(5);
  Matrix extra(dim, dim);
  Vector be(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) extra(i, j) = rng.uniform(-1, 1);
    be[i] = rng.uniform(0.5, 1.5);
  }
  const HPolytope p = box.intersect(HPolytope(extra, be));
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly::project_prefix(p, 2));
  }
  state.SetLabel("eliminate " + std::to_string(dim - 2) + " of " + std::to_string(dim));
}
BENCHMARK(BM_FourierMotzkinProject)->Arg(3)->Arg(4)->Arg(6);

void BM_DqnTrainStep(benchmark::State& state) {
  rl::DqnConfig cfg;
  cfg.min_replay = 32;
  rl::DoubleDqn agent(4, 2, cfg, Rng(1));
  Rng rng(2);
  // Warm the replay buffer.
  for (int i = 0; i < 64; ++i) {
    rl::Transition t;
    t.state = Vector{rng.uniform(-1, 1), rng.uniform(-1, 1), 0, 0};
    t.action = rng.uniform_int(0, 1);
    t.reward = rng.uniform(-1, 1);
    t.next_state = t.state;
    agent.observe(std::move(t));
  }
  for (auto _ : state) {
    rl::Transition t;
    t.state = Vector{rng.uniform(-1, 1), rng.uniform(-1, 1), 0, 0};
    t.action = rng.uniform_int(0, 1);
    t.reward = rng.uniform(-1, 1);
    t.next_state = t.state;
    benchmark::DoNotOptimize(agent.observe(std::move(t)));
  }
}
BENCHMARK(BM_DqnTrainStep);

}  // namespace

BENCHMARK_MAIN();
