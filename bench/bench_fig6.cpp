/// \file bench_fig6.cpp
/// Reproduces Figure 6: fuel-consumption saving of the DRL-based
/// opportunistic intermittent control as the *regularity* of the front
/// vehicle's velocity increases (Ex.6 .. Ex.10):
///
///   Ex.6  -- vf purely random in [30, 50] each step;
///   Ex.7  -- continuous random (bounded acceleration), same range;
///   Ex.8  -- sinusoid af = 5 with noise [-5, 5];
///   Ex.9  -- sinusoid af = 8 with noise [-2, 2];
///   Ex.10 -- sinusoid af = 9 with noise [-1, 1].
///
/// Paper's qualitative result: savings increase from Ex.7 to Ex.10 (more
/// regularity = easier learning), with Ex.6 an outlier that still saves a
/// lot (the paper attributes this to RMPC's own mismatch under purely
/// random vf).
///
/// Flags: --cases=N (default 100; paper 500), --episodes=N (default 100),
/// --steps=N (default 100).

#include <cstdio>

#include "bench_scenario_common.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace oic;
  const std::size_t cases = benchutil::flag(argc, argv, "cases", 100);
  const std::size_t episodes = benchutil::flag(argc, argv, "episodes", 200);
  const std::size_t steps = benchutil::flag(argc, argv, "steps", 100);

  std::printf("=== Figure 6: saving vs regularity of the front vehicle ===\n");
  std::printf("cases=%zu/scenario, steps=%zu, DQN episodes=%zu (scenarios in "
              "parallel)\n\n",
              cases, steps, episodes);

  const acc::AccParams params;
  std::vector<acc::Scenario> scenarios;
  for (int i = 6; i <= 10; ++i) scenarios.push_back(acc::regularity_scenario(i, params));

  const auto results =
      benchutil::evaluate_scenarios(scenarios, cases, episodes, steps, 606001);

  benchutil::rule('=');
  std::printf("%-6s %-40s %-12s %-10s %-6s\n", "Ex.", "front-vehicle pattern",
              "DRL saving", "bang-bang", "safe?");
  benchutil::rule();
  bool any_violation = false;
  for (const auto& r : results) {
    std::printf("%-6s %-40s %6.2f %%     %6.2f %%  %-6s\n", r.id.c_str(),
                r.description.substr(0, 40).c_str(), 100.0 * r.drl_saving,
                100.0 * r.bb_saving, r.violation ? "NO!" : "yes");
    any_violation |= r.violation;
  }
  benchutil::rule();

  // Trend check over the continuous-pattern scenarios Ex.7 .. Ex.10.
  bool increasing = true;
  for (std::size_t i = 2; i < results.size(); ++i) {
    if (results[i].drl_saving < results[i - 1].drl_saving - 0.02) increasing = false;
  }
  std::printf("\npaper series (Fig. 6): rising from Ex.7 to Ex.10 (~8 %% -> ~22 %%), "
              "Ex.6 high outlier\n");
  std::printf("observed Ex.7->Ex.10 trend: %s\n",
              increasing ? "non-decreasing (matches the paper)" : "NOT monotone");
  return any_violation ? 1 : 0;
}
