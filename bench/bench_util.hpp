#pragma once
/// \file bench_util.hpp
/// Tiny shared utilities for the experiment harnesses: command-line
/// parsing (--cases=N, --episodes=N, --steps=N) and table printing.
///
/// Every experiment binary accepts overrides so the full paper-scale run
/// (500 cases) can be requested explicitly while the default stays sized
/// for a CI-friendly wall clock.  Defaults are documented per bench in
/// EXPERIMENTS.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace oic::benchutil {

/// Parse "--key=value" integer flags; returns `fallback` when absent.
inline std::size_t flag(int argc, char** argv, const char* key, std::size_t fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(argv[i] + prefix.size(), nullptr, 10));
    }
  }
  // Environment fallback: OIC_<KEY> upper-cased.
  std::string env = "OIC_" + std::string(key);
  for (auto& c : env) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  if (const char* v = std::getenv(env.c_str())) {
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  return fallback;
}

/// Print a horizontal rule sized for the standard table width.
inline void rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Simple ASCII bar for histogram rows (one '#' per `unit` counts).
inline std::string bar(std::size_t count, double unit = 4.0) {
  const auto n = static_cast<std::size_t>(static_cast<double>(count) / unit + 0.5);
  return std::string(n, '#');
}

}  // namespace oic::benchutil
