#pragma once
/// \file bench_kernels.hpp
/// Per-kernel, per-ISA microbench shared by the standalone bench_kernels
/// binary and bench_throughput's "kernels" JSON section.
///
/// Every entry of the dispatch table (linalg/dispatch.hpp) is timed twice
/// -- once through the scalar table, once through the AVX2 table -- on a
/// shape representative of its hot-path call site (the warm dual-simplex
/// tableau for the lp_* primitives, the DQN 64x64 layer for the GEMM
/// family, the monitor membership pass for batch_max_violation).  On a
/// machine without AVX2 the "avx2" request falls back to the scalar table
/// (table_for's contract), so both columns are always populated and the
/// JSON schema is stable across hosts; `avx2_native` records whether the
/// avx2 column actually exercised vector code.
///
/// GB/s is computed from the bytes each call logically touches (reads +
/// writes, 8 bytes per double, masks 1 byte per entry) -- a working-set
/// rate, not measured cache traffic.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/jsonout.hpp"
#include "common/random.hpp"
#include "linalg/dispatch.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"

namespace oic::benchkernels {

/// One ISA column of a kernel's measurement.
struct IsaTiming {
  double ns_per_op = 0.0;
  double gb_per_s = 0.0;
};

/// One kernel's measurement across both dispatch tables.
struct KernelStat {
  std::string kernel;          ///< dispatch-table entry name
  std::string shape;           ///< human-readable problem shape
  std::size_t bytes_per_op = 0;  ///< logically touched bytes per call
  IsaTiming scalar;
  IsaTiming avx2;
  double speedup() const {
    return avx2.ns_per_op > 0.0 ? scalar.ns_per_op / avx2.ns_per_op : 0.0;
  }
};

namespace detail {

/// Defeats dead-code elimination across iterations.  The kernels are
/// called through the dispatch table's function pointers, which already
/// blocks inlining; the sink additionally anchors their outputs.
inline volatile double sink = 0.0;

/// Median-of-three timed runs of `op`, each run sized to ~budget_ms of
/// wall time (calibrated by doubling).  Robust against scheduler noise on
/// the shared CI boxes; returns ns per call.
template <class F>
double time_ns_per_op(F&& op, double budget_ms) {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_s = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  op();  // warm the caches and the branch predictors once
  std::size_t iters = 1;
  double secs = 0.0;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    secs = elapsed_s(t0);
    if (secs * 1e3 >= budget_ms || iters >= (std::size_t{1} << 28)) break;
    // Jump straight toward the budget instead of doubling forever.
    const double want = budget_ms / 1e3;
    const std::size_t next =
        secs > 0.0 ? static_cast<std::size_t>(iters * (want / secs) * 1.25) : iters * 2;
    iters = std::max(iters * 2, next);
  }
  double best[3];
  for (double& b : best) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) op();
    b = elapsed_s(t0) * 1e9 / static_cast<double>(iters);
  }
  std::sort(best, best + 3);
  return best[1];
}

}  // namespace detail

/// Run the full per-kernel sweep.  `budget_ms` is the wall-time target
/// per (kernel, ISA) timing run -- ~20 ms gives stable medians for the
/// committed reference; the smoke run uses less.
inline std::vector<KernelStat> run(double budget_ms = 20.0) {
  using linalg::Matrix;
  using linalg::detail::KernelTable;
  using linalg::detail::table_for;
  namespace sd = linalg::simd;

  Rng rng(20200406);
  const auto fill = [&](double* p, std::size_t n, double lo, double hi) {
    for (std::size_t i = 0; i < n; ++i) p[i] = rng.uniform(lo, hi);
  };

  // ---- hot-path shapes ----
  // Warm MPC tableau: ~190-row B^-1 panel columns, ~512-column pricing row.
  const std::size_t row_n = 192, price_n = 512;
  // DQN hidden layer (rl/dqn.hpp default hidden = {64, 64}, batch_size 32).
  const std::size_t rows = 64, cols = 64, batch = 32;
  // Monitor membership: an 8-face XI polytope over 4 states, 256 sessions.
  const std::size_t vrows = 8, vcols = 4, vbatch = 256;

  std::vector<double> dst(row_n), src(row_n), price(price_n);
  std::vector<unsigned char> blocked(price_n);
  fill(dst.data(), row_n, -1.0, 1.0);
  fill(src.data(), row_n, -1.0, 1.0);
  fill(price.data(), price_n, -1.0, 1.0);
  for (std::size_t i = 0; i < price_n; ++i) {
    blocked[i] = rng.uniform_int(0, 3) == 0 ? 1 : 0;
  }

  Matrix a(rows, cols);
  fill(a.data(), rows * cols, -0.5, 0.5);
  std::vector<double> x(batch * cols), b(rows), y(batch * rows);
  std::vector<double> d(batch * rows), dp(batch * cols), db(rows);
  fill(x.data(), x.size(), -1.0, 1.0);
  fill(b.data(), b.size(), -1.0, 1.0);
  fill(d.data(), d.size(), -1.0, 1.0);
  Matrix dw(rows, cols);

  Matrix va(vrows, vcols);
  fill(va.data(), vrows * vcols, -1.0, 1.0);
  std::vector<double> vb(vrows), vx(vbatch * vcols), worst(vbatch);
  fill(vb.data(), vrows, 0.5, 1.5);
  fill(vx.data(), vx.size(), -1.0, 1.0);

  // A tiny scale keeps the mutating kernels (row updates, grad accum)
  // numerically flat over hundreds of millions of iterations: no drift
  // into denormals or infinities that would skew the timing.
  const double f = 1e-12;

  struct Spec {
    const char* name;
    const char* shape;
    std::size_t bytes;
    std::function<void(const KernelTable&)> op;
  };
  const std::vector<Spec> specs = {
      {"lp_row_sub_scaled", "n=192", 8 * (3 * row_n),
       [&](const KernelTable& t) {
         t.lp_row_sub_scaled(dst.data(), src.data(), f, row_n);
       }},
      {"lp_row_add_scaled", "n=192", 8 * (3 * row_n),
       [&](const KernelTable& t) {
         t.lp_row_add_scaled(dst.data(), src.data(), f, row_n);
       }},
      {"lp_argmin", "n=512", 8 * price_n,
       [&](const KernelTable& t) {
         detail::sink = static_cast<double>(t.lp_argmin(price.data(), price_n, 1e300));
       }},
      {"lp_argmin_masked", "n=512", 8 * price_n + price_n,
       [&](const KernelTable& t) {
         detail::sink = static_cast<double>(
             t.lp_argmin_masked(price.data(), blocked.data(), price_n, 1e300));
       }},
      {"gemv", "64x64", 8 * (rows * cols + cols + rows),
       [&](const KernelTable& t) { t.gemv(a, x.data(), y.data()); }},
      {"gemv_sub", "64x64", 8 * (rows * cols + cols + 2 * rows),
       [&](const KernelTable& t) { t.gemv_sub(a, x.data(), y.data()); }},
      {"gemv_bias", "64x64", 8 * (rows * cols + cols + 2 * rows),
       [&](const KernelTable& t) {
         t.gemv_bias(a, x.data(), b.data(), y.data(), true);
       }},
      {"gemm_bias", "64x64 b=32", 8 * (rows * cols + batch * cols + rows + batch * rows),
       [&](const KernelTable& t) {
         t.gemm_bias(a, x.data(), batch, cols, b.data(), y.data(), rows, true);
       }},
      {"gemm_transpose", "64x64 b=32",
       8 * (rows * cols + batch * rows + batch * cols),
       [&](const KernelTable& t) {
         t.gemm_transpose(a, d.data(), batch, rows, dp.data(), cols);
       }},
      {"gemm_grad_accum", "64x64 b=32",
       8 * (batch * rows + batch * cols + rows * cols + rows),
       [&](const KernelTable& t) {
         t.gemm_grad_accum(d.data(), batch, rows, x.data(), cols, dw, db.data());
       }},
      {"batch_max_violation", "8x4 b=256",
       8 * (vrows * vcols + vrows + vbatch * vcols + vbatch),
       [&](const KernelTable& t) {
         t.batch_max_violation(va, vb.data(), vx.data(), vbatch, vcols, worst.data());
       }},
  };

  std::vector<KernelStat> out;
  out.reserve(specs.size());
  for (const Spec& s : specs) {
    KernelStat stat;
    stat.kernel = s.name;
    stat.shape = s.shape;
    stat.bytes_per_op = s.bytes;
    const auto measure = [&](sd::Isa isa) {
      const KernelTable& t = table_for(isa);
      IsaTiming tm;
      tm.ns_per_op = detail::time_ns_per_op([&] { s.op(t); }, budget_ms);
      tm.gb_per_s = tm.ns_per_op > 0.0
                        ? static_cast<double>(s.bytes) / tm.ns_per_op
                        : 0.0;
      return tm;
    };
    stat.scalar = measure(sd::Isa::kScalar);
    stat.avx2 = measure(sd::Isa::kAvx2);
    out.push_back(std::move(stat));
  }
  return out;
}

/// True when the avx2 column above ran vector code rather than the
/// scalar fallback.
inline bool avx2_native() {
  return linalg::simd::compiled_avx2() && linalg::simd::cpu_has_avx2();
}

/// Print the sweep as an aligned table.
inline void print(const std::vector<KernelStat>& stats) {
  std::printf("%-20s %-11s %9s | %9s %7s | %9s %7s | %6s\n", "kernel", "shape",
              "bytes/op", "scalar ns", "GB/s", "avx2 ns", "GB/s", "ratio");
  for (const KernelStat& s : stats) {
    std::printf("%-20s %-11s %9zu | %9.1f %7.2f | %9.1f %7.2f | %5.2fx\n",
                s.kernel.c_str(), s.shape.c_str(), s.bytes_per_op,
                s.scalar.ns_per_op, s.scalar.gb_per_s, s.avx2.ns_per_op,
                s.avx2.gb_per_s, s.speedup());
  }
  std::printf("avx2 column ran native vector code: %s\n",
              avx2_native() ? "yes" : "no (scalar fallback)");
}

/// Append the "kernels" section (section ends with ",\n" per the
/// jsonout::Doc convention).
inline void append_json(std::string& out, const std::vector<KernelStat>& stats) {
  using jsonout::append_format;
  append_format(out, "  \"kernels\": {\"avx2_native\": %s, \"results\": [",
                avx2_native() ? "true" : "false");
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const KernelStat& s = stats[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"kernel\": ";
    jsonout::append_string(out, s.kernel);
    out += ", \"shape\": ";
    jsonout::append_string(out, s.shape);
    append_format(out,
                  ", \"bytes_per_op\": %zu, "
                  "\"scalar\": {\"ns_per_op\": %.2f, \"gb_per_s\": %.3f}, "
                  "\"avx2\": {\"ns_per_op\": %.2f, \"gb_per_s\": %.3f}, "
                  "\"speedup\": %.3f}",
                  s.bytes_per_op, s.scalar.ns_per_op, s.scalar.gb_per_s,
                  s.avx2.ns_per_op, s.avx2.gb_per_s, s.speedup());
  }
  out += "\n  ]},\n";
}

}  // namespace oic::benchkernels
