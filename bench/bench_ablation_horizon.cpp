/// \file bench_ablation_horizon.cpp
/// Ablation of the model-based skipping policy (Equation 6), a design
/// choice called out in DESIGN.md: the exact branch-and-prune search over
/// binary skip sequences versus the big-M MIP formulation solved by branch
/// & bound, across horizons H.  Both are exact optimizers of the same
/// problem, so costs must agree; the interesting outputs are wall time and
/// node counts, plus the energy saving the model-based policy achieves on
/// the noise-free sinusoid (where the disturbance oracle is exact).
///
/// Flags: --cases=N evaluation cases (default 30), --steps=N (default 100).

#include <chrono>
#include <cstdio>

#include "acc/harness.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/model_based.hpp"

namespace {

using namespace oic;
using Clock = std::chrono::steady_clock;

/// Oracle for the noise-free Equation-8 sinusoid in W-space.
class SinusoidOracle final : public core::DisturbanceOracle {
 public:
  SinusoidOracle(const acc::AccCase& acc, double af) : acc_(acc), af_(af) {}
  linalg::Vector at(std::size_t t) const override {
    const double vf = acc_.params().v_ref() +
                      af_ * std::sin(M_PI / 2.0 * acc_.params().delta *
                                     static_cast<double>(t));
    return linalg::Vector{acc_.w_from_vf(vf)};
  }

 private:
  const acc::AccCase& acc_;
  double af_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t cases = benchutil::flag(argc, argv, "cases", 30);
  const std::size_t steps = benchutil::flag(argc, argv, "steps", 100);

  std::printf("=== Ablation: model-based Omega (Eq. 6) -- exact search vs MIP ===\n");
  std::printf("workload: noise-free sinusoid (known disturbance), kappa = LQR "
              "feedback\ncases=%zu, steps=%zu\n\n",
              cases, steps);

  acc::AccCase acc_case;
  control::LinearFeedback kappa(acc_case.lqr_gain());
  SinusoidOracle oracle(acc_case, 9.0);

  benchutil::rule('=');
  std::printf("%-4s | %-26s | %-26s | %s\n", "H", "exact search", "big-M MIP",
              "cost match");
  std::printf("%-4s | %12s %13s | %12s %13s |\n", "", "mean us/call", "mean nodes",
              "mean us/call", "mean nodes");
  benchutil::rule();

  for (std::size_t h : {2u, 4u, 6u, 8u, 10u}) {
    core::ModelBasedConfig ecfg;
    ecfg.horizon = h;
    ecfg.solver = core::ModelBasedConfig::Solver::kExactSearch;
    core::ModelBasedPolicy exact(acc_case.system(), acc_case.sets(), kappa,
                                 acc_case.u_skip(), oracle, ecfg);
    core::ModelBasedConfig mcfg = ecfg;
    mcfg.solver = core::ModelBasedConfig::Solver::kBigMMip;
    core::ModelBasedPolicy mip(acc_case.system(), acc_case.sets(), kappa,
                               acc_case.u_skip(), oracle, mcfg);

    Rng rng(9000 + h);
    double t_exact = 0.0, t_mip = 0.0;
    double n_exact = 0.0, n_mip = 0.0;
    std::size_t mismatches = 0;
    const std::size_t probes = 40;
    for (std::size_t i = 0; i < probes; ++i) {
      const linalg::Vector x = acc_case.sample_x0(rng);
      exact.reset();
      mip.reset();
      auto t0 = Clock::now();
      exact.decide(x, {});
      auto t1 = Clock::now();
      mip.decide(x, {});
      auto t2 = Clock::now();
      t_exact += std::chrono::duration<double, std::micro>(t1 - t0).count();
      t_mip += std::chrono::duration<double, std::micro>(t2 - t1).count();
      n_exact += static_cast<double>(exact.last().nodes_explored);
      n_mip += static_cast<double>(mip.last().nodes_explored);
      if (exact.last().feasible != mip.last().feasible ||
          (exact.last().feasible &&
           std::abs(exact.last().planned_cost - mip.last().planned_cost) > 1e-4)) {
        ++mismatches;
      }
    }
    std::printf("%-4zu | %12.1f %13.1f | %12.1f %13.1f | %s\n", h, t_exact / probes,
                n_exact / probes, t_mip / probes, n_mip / probes,
                mismatches == 0 ? "yes" : "MISMATCH");
  }
  benchutil::rule();

  // Energy saving of the model-based policy vs RMPC-only on the known
  // sinusoid (the scenario where Eq. 6 is applicable).
  std::printf("\n[model-based policy energy saving on the known sinusoid]\n");
  const acc::AccParams p = acc_case.params();
  acc::Scenario noiseless("Eq8-clean", "noise-free sinusoid",
                          std::make_unique<sim::SinusoidalProfile>(
                              p.v_ref(), 9.0, p.delta, 0.0, p.vf_min, p.vf_max));

  core::ModelBasedConfig cfg;
  cfg.horizon = 8;
  cfg.energy_offset = acc_case.energy_offset();
  core::ModelBasedPolicy mb(acc_case.system(), acc_case.sets(), kappa,
                            acc_case.u_skip(), oracle, cfg);
  core::BangBangPolicy bb;
  const auto cmp = acc::compare_policies(acc_case, noiseless, {&bb, &mb}, cases,
                                         steps, 777001);
  std::printf("  bang-bang    : %6.2f %% fuel saving vs RMPC-only\n",
              100.0 * mean(cmp.savings[0]));
  std::printf("  model-based  : %6.2f %% fuel saving vs RMPC-only (H=8, exact)\n",
              100.0 * mean(cmp.savings[1]));
  std::printf("  safety       : %s\n",
              (cmp.any_violation[0] || cmp.any_violation[1]) ? "VIOLATED (BUG!)"
                                                             : "no violations");
  return (cmp.any_violation[0] || cmp.any_violation[1]) ? 1 : 0;
}
