/// \file bench_timing.cpp
/// Reproduces the computation-saving analysis of Sec. IV-A (text):
///
///   "the computation time for checking the satisfaction of strengthened
///    safe set X' and invoking the neural network to decide skipping choice
///    z is in average 0.02 s; while the average computation time for RMPC
///    is 0.12 s ... out of 100 steps, the average number of steps that
///    skip the RMPC computation is 79.4.  Thus, overall, there is around
///    60 % saving in computation time."
///
/// We measure the same three quantities on this implementation (absolute
/// times differ from the authors' MATLAB/GPU stack; the *ratio* and the
/// resulting saving formula are the reproduction target) and evaluate
///   (T_rmpc*100 - (T_monitor*100 + T_rmpc*(100 - skipped))) / (T_rmpc*100).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "acc/harness.hpp"
#include "acc/trainer.hpp"
#include "core/drl_policy.hpp"

namespace {

oic::acc::AccCase& acc_case() {
  static oic::acc::AccCase acc;
  return acc;
}

const oic::acc::TrainedAgent& trained_agent() {
  static oic::acc::TrainedAgent trained = [] {
    oic::acc::TrainerConfig cfg;
    cfg.episodes = 40;  // timing only needs a representative network
    const auto scen = oic::acc::fig4_scenario(acc_case().params());
    return oic::acc::train_dqn(acc_case(), scen, cfg);
  }();
  return trained;
}

void BM_RmpcControl(benchmark::State& state) {
  auto& acc = acc_case();
  oic::Rng rng(1);
  const auto x = acc.sample_x0(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.rmpc().control(x));
  }
}
BENCHMARK(BM_RmpcControl);

void BM_MonitorCheckXPrime(benchmark::State& state) {
  auto& acc = acc_case();
  oic::Rng rng(2);
  const auto x = acc.sample_x0(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.sets().x_prime.contains(x));
  }
}
BENCHMARK(BM_MonitorCheckXPrime);

void BM_DqnForward(benchmark::State& state) {
  auto& acc = acc_case();
  const auto& trained = trained_agent();
  oic::Rng rng(3);
  const auto x = acc.sample_x0(rng);
  const auto s = oic::core::apply_state_scale(
      oic::core::build_drl_state(x, {oic::linalg::Vector{0.5, 0.0}},
                                 trained.memory, 2),
      trained.state_scale);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trained.agent->greedy_action(s));
  }
}
BENCHMARK(BM_DqnForward);

void BM_MonitorPlusDqn(benchmark::State& state) {
  // The full per-step cost of the intermittent framework on a skipped step.
  auto& acc = acc_case();
  const auto drl = trained_agent().make_policy();
  oic::Rng rng(4);
  const auto x = acc.sample_x0(rng);
  std::vector<oic::linalg::Vector> hist{oic::linalg::Vector{0.5, 0.0}};
  for (auto _ : state) {
    bool in = acc.sets().x_prime.contains(x);
    benchmark::DoNotOptimize(in);
    if (in) benchmark::DoNotOptimize(drl->decide(x, hist));
  }
}
BENCHMARK(BM_MonitorPlusDqn);

/// Measure mean wall time of fn over `iters` calls, in seconds.
template <typename F>
double time_call(F&& fn, int iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

void print_section_iva_summary() {
  auto& acc = acc_case();
  const auto drl = trained_agent().make_policy();
  oic::Rng rng(7);
  const auto x = acc.sample_x0(rng);
  std::vector<oic::linalg::Vector> hist{oic::linalg::Vector{0.5, 0.0}};

  const double t_rmpc = time_call([&] { acc.rmpc().control(x); }, 200);
  const double t_monitor = time_call(
      [&] {
        if (acc.sets().x_prime.contains(x)) drl->decide(x, hist);
      },
      2000);

  // Skip count from an actual evaluation (same scenario as Fig. 4).
  const auto scen = oic::acc::fig4_scenario(acc.params());
  const auto cmp = oic::acc::compare_policies(acc, scen, {drl.get()}, 20, 100, 424242);
  const double skipped = cmp.mean_skipped[0];

  const double total_rmpc_only = t_rmpc * 100.0;
  const double total_ours = t_monitor * 100.0 + t_rmpc * (100.0 - skipped);
  const double saving = (total_rmpc_only - total_ours) / total_rmpc_only;

  std::printf("\n=== Sec. IV-A computation-saving summary ===\n");
  std::printf("mean RMPC solve time            : %8.3f ms   (paper: 120 ms)\n",
              1e3 * t_rmpc);
  std::printf("mean monitor + DQN decision time: %8.4f ms   (paper: 20 ms)\n",
              1e3 * t_monitor);
  std::printf("monitor+DQN / RMPC cost ratio   : %8.4f     (paper: 0.167)\n",
              t_monitor / t_rmpc);
  std::printf("mean skipped steps per 100      : %8.1f      (paper: 79.4)\n", skipped);
  std::printf("computation-time saving         : %8.1f %%    (paper: ~60 %%)\n",
              100.0 * saving);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_section_iva_summary();
  return 0;
}
