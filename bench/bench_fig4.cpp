/// \file bench_fig4.cpp
/// Reproduces Figure 4 (and the Sec. IV-A headline numbers): fuel-saving
/// histogram of DRL-based opportunistic intermittent-control and bang-bang
/// control against the RMPC-only baseline, on the sinusoidal front-vehicle
/// scenario of Equation (8), plus the average-saving and skipped-steps
/// statistics quoted in the text.
///
/// Paper reference values (absolute numbers depend on SUMO's fuel tables;
/// the *shape* -- DRL > bang-bang > 0, most mass in the low-saving buckets
/// for bang-bang and shifted right for DRL -- is what this bench checks):
///   mean saving: bang-bang 16.28 %, DRL 23.83 %;
///   skipped RMPC computations: 79.4 / 100 steps.
///
/// Flags: --cases=N (default 200; paper uses 500), --episodes=N (DQN
/// training episodes, default 150), --steps=N (default 100).

#include <cstdio>

#include "acc/harness.hpp"
#include "acc/trainer.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/drl_policy.hpp"

int main(int argc, char** argv) {
  using namespace oic;
  const std::size_t cases = benchutil::flag(argc, argv, "cases", 200);
  const std::size_t episodes = benchutil::flag(argc, argv, "episodes", 200);
  const std::size_t steps = benchutil::flag(argc, argv, "steps", 100);

  std::printf("=== Figure 4: fuel-consumption savings vs RMPC-only ===\n");
  std::printf("scenario: sinusoidal vf (Eq. 8), ve=40, af=9, w in [-1,1]\n");
  std::printf("cases=%zu, steps/case=%zu, DQN episodes=%zu\n\n", cases, steps, episodes);

  acc::AccCase acc_case;
  const acc::Scenario scen = acc::fig4_scenario(acc_case.params());

  acc::TrainerConfig tcfg;
  tcfg.episodes = episodes;
  tcfg.steps_per_episode = steps;
  std::printf("[train] double-DQN skipping agent (r=%zu, w1=%g, w2=%g)...\n",
              tcfg.memory, tcfg.w1, tcfg.w2);
  acc::TrainingLog log;
  const acc::TrainedAgent trained = acc::train_dqn(acc_case, scen, tcfg, &log);
  std::printf("[train] done: %zu gradient steps, final-episode skip ratio %.2f\n\n",
              trained.agent->train_steps(), log.episode_skip_ratio.back());

  core::BangBangPolicy bangbang;
  const auto drl = trained.make_policy();
  const auto cmp = acc::compare_policies(acc_case, scen, {&bangbang, drl.get()},
                                         cases, steps, /*seed=*/20200406);

  // Histogram exactly as the paper buckets it: 0-10 % ... 50-60 %.
  Histogram hist_bb(0.0, 0.6, 6);
  Histogram hist_drl(0.0, 0.6, 6);
  for (double s : cmp.savings[0]) hist_bb.add(s);
  for (double s : cmp.savings[1]) hist_drl.add(s);

  benchutil::rule('=');
  std::printf("%-12s | %-28s | %-28s\n", "saving", "bang-bang control",
              "opportunistic intermittent-ctl");
  benchutil::rule();
  for (std::size_t b = 0; b < hist_bb.bins(); ++b) {
    std::printf("%-12s | %4zu %-23s | %4zu %-23s\n", hist_bb.label(b, true).c_str(),
                hist_bb.count(b), benchutil::bar(hist_bb.count(b)).c_str(),
                hist_drl.count(b), benchutil::bar(hist_drl.count(b)).c_str());
  }
  benchutil::rule();

  std::printf("\naverage fuel saving vs RMPC-only:\n");
  std::printf("  bang-bang control              : %6.2f %%   (paper: 16.28 %%)\n",
              100.0 * mean(cmp.savings[0]));
  std::printf("  opportunistic intermittent-ctl : %6.2f %%   (paper: 23.83 %%)\n",
              100.0 * mean(cmp.savings[1]));
  std::printf("\naverage skipped RMPC computations per %zu steps:\n", steps);
  std::printf("  bang-bang control              : %6.1f\n", cmp.mean_skipped[0]);
  std::printf("  opportunistic intermittent-ctl : %6.1f   (paper: 79.4)\n",
              cmp.mean_skipped[1]);
  std::printf("\nsafety violations: bang-bang=%s, DRL=%s (Theorem 1: must be none)\n",
              cmp.any_violation[0] ? "YES (BUG!)" : "none",
              cmp.any_violation[1] ? "YES (BUG!)" : "none");
  return (cmp.any_violation[0] || cmp.any_violation[1]) ? 1 : 0;
}
