/// \file bench_sets.cpp
/// Micro-benchmarks of the safe-set pipeline of Sec. III-A (google-
/// benchmark), plus the open-loop vs closed-loop constraint-tightening
/// ablation called out in DESIGN.md:
///
///   * mRPI outer approximation (Rakovic scheme) for linear feedback;
///   * maximal robust control invariant set (fixed-point iteration);
///   * RMPC feasible-set computation (Fourier-Motzkin recursion, Prop. 1);
///   * strengthened safe set X' = B(XI, 0) intersect XI (Definition 3);
///   * tightening-mode ablation: terminal/Chebyshev radii of X(N).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "acc/acc.hpp"
#include "control/invariant.hpp"
#include "control/lqr.hpp"
#include "control/reach.hpp"
#include "control/tube_mpc.hpp"
#include "core/safe_sets.hpp"

namespace {

using namespace oic;
using control::AffineLTI;
using linalg::Matrix;
using linalg::Vector;
using poly::HPolytope;

AffineLTI double_integrator(double wmag) {
  const double dt = 0.1;
  Matrix a{{1, dt}, {0, 1}};
  Matrix b{{0.5 * dt * dt}, {dt}};
  return AffineLTI::canonical(a, b, HPolytope::sym_box(Vector{5, 5}),
                              HPolytope::sym_box(Vector{2}),
                              HPolytope::sym_box(Vector{wmag, wmag}));
}

void BM_MrpiOuter(benchmark::State& state) {
  const AffineLTI sys = double_integrator(0.05);
  const auto lqr = control::dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  const Matrix a_cl = sys.a() + sys.b() * lqr.k;
  const HPolytope w = sys.disturbance_in_state_space();
  control::MrpiOptions opt;
  opt.alpha = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(control::mrpi_outer(a_cl, w, opt));
  }
  state.SetLabel("alpha=1/" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MrpiOuter)->Arg(5)->Arg(20)->Arg(100);

void BM_MaximalRobustControlInvariant(benchmark::State& state) {
  const AffineLTI sys = double_integrator(0.05);
  const auto lqr = control::dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        control::maximal_robust_control_invariant(sys, lqr.k, Vector{0.0}));
  }
}
BENCHMARK(BM_MaximalRobustControlInvariant);

void BM_RmpcFeasibleSet(benchmark::State& state) {
  const AffineLTI sys = double_integrator(0.02);
  const auto lqr = control::dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  control::RmpcConfig cfg;
  cfg.horizon = static_cast<std::size_t>(state.range(0));
  const control::TubeMpc mpc(sys, lqr.k, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpc.compute_feasible_set());
  }
  state.SetLabel("N=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RmpcFeasibleSet)->Arg(4)->Arg(8)->Arg(12);

void BM_StrengthenedSafeSet(benchmark::State& state) {
  const AffineLTI sys = double_integrator(0.05);
  const auto lqr = control::dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  const auto inv = control::maximal_robust_control_invariant(sys, lqr.k, Vector{0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_safe_sets(sys, inv.set, Vector{0.0}));
  }
}
BENCHMARK(BM_StrengthenedSafeSet);

void BM_BackwardReachConstInput(benchmark::State& state) {
  const AffineLTI sys = double_integrator(0.05);
  const HPolytope y = HPolytope::sym_box(Vector{2, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(control::backward_reach_const_input(sys, y, Vector{0.0}));
  }
}
BENCHMARK(BM_BackwardReachConstInput);

void print_tightening_ablation() {
  std::printf("\n=== Ablation: open-loop (paper) vs closed-loop (Chisci) "
              "tightening ===\n");
  std::printf("%-22s %-18s %-18s %-18s\n", "configuration", "X(N) Chebyshev r",
              "terminal Cheb. r", "XI Chebyshev r");
  const acc::AccParams params;
  for (const bool closed : {false, true}) {
    control::RmpcConfig cfg = acc::AccCase::default_rmpc();
    cfg.closed_loop_tightening = closed;
    acc::AccCase acc_case(params, cfg);
    const auto& mpc = acc_case.rmpc();
    const double rx = mpc.tightened(cfg.horizon).chebyshev().radius;
    const double rt = mpc.terminal_set().chebyshev().radius;
    const double ri = acc_case.sets().xi.chebyshev().radius;
    std::printf("%-22s %-18.3f %-18.3f %-18.3f\n",
                closed ? "closed-loop (Chisci)" : "open-loop (paper)", rx, rt, ri);
  }
  std::printf(
      "(which mode is less conservative is system-dependent: closed-loop wins "
      "when\n A amplifies the disturbance direction, open-loop wins when A "
      "leaves it\n invariant and feedback would spread it into other "
      "coordinates -- the ACC\n plant is the latter case)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tightening_ablation();
  return 0;
}
