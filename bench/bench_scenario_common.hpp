#pragma once
/// \file bench_scenario_common.hpp
/// Shared driver for the scenario-sweep experiments (Table I / Fig. 5 and
/// Fig. 6): per scenario, train a DQN skipping agent and measure the mean
/// fuel saving of the DRL-based intermittent control against RMPC-only
/// (bang-bang included for context).  Scenarios run in parallel threads;
/// each thread owns an independent AccCase so results are deterministic
/// per-scenario regardless of scheduling.

#include <future>
#include <vector>

#include "acc/harness.hpp"
#include "acc/trainer.hpp"
#include "common/stats.hpp"
#include "core/drl_policy.hpp"

namespace oic::benchutil {

struct ScenarioOutcome {
  std::string id;
  std::string description;
  double drl_saving = 0.0;       ///< mean fuel saving vs RMPC-only
  double bb_saving = 0.0;        ///< bang-bang reference
  double drl_saving_sd = 0.0;    ///< std-dev across cases
  double drl_skipped = 0.0;      ///< mean skipped steps per episode
  bool violation = false;        ///< any safety violation (must be false)
};

inline ScenarioOutcome evaluate_scenario(const acc::Scenario& scenario,
                                         std::size_t cases, std::size_t episodes,
                                         std::size_t steps, std::uint64_t seed) {
  acc::AccCase acc_case;  // per-thread instance (construction is the pricey part)

  // DQN training occasionally collapses to an always-run policy from an
  // unlucky seed (single-seed variance the paper also inherits); train two
  // seeds and keep the better one by mean reward over the final quarter of
  // episodes -- model selection on the *training* signal only.
  acc::TrainedAgent trained;
  double best_tail = -std::numeric_limits<double>::infinity();
  for (int attempt = 0; attempt < 2; ++attempt) {
    acc::TrainerConfig tcfg;
    tcfg.episodes = episodes;
    tcfg.steps_per_episode = steps;
    tcfg.seed = seed + static_cast<std::uint64_t>(attempt) * 7919;
    acc::TrainingLog log;
    acc::TrainedAgent candidate = acc::train_dqn(acc_case, scenario, tcfg, &log);
    const std::size_t tail = std::max<std::size_t>(1, log.episode_reward.size() / 4);
    double tail_reward = 0.0;
    for (std::size_t i = log.episode_reward.size() - tail;
         i < log.episode_reward.size(); ++i) {
      tail_reward += log.episode_reward[i];
    }
    tail_reward /= static_cast<double>(tail);
    if (tail_reward > best_tail) {
      best_tail = tail_reward;
      trained = std::move(candidate);
    }
  }

  core::BangBangPolicy bangbang;
  const auto drl = trained.make_policy();
  const auto cmp = acc::compare_policies(acc_case, scenario, {&bangbang, drl.get()},
                                         cases, steps, seed ^ 0x5bd1e995u);

  ScenarioOutcome out;
  out.id = scenario.id;
  out.description = scenario.description;
  out.bb_saving = mean(cmp.savings[0]);
  out.drl_saving = mean(cmp.savings[1]);
  out.drl_saving_sd = stddev(cmp.savings[1]);
  out.drl_skipped = cmp.mean_skipped[1];
  out.violation = cmp.any_violation[0] || cmp.any_violation[1];
  return out;
}

/// Evaluate several scenarios concurrently (one thread each).
inline std::vector<ScenarioOutcome> evaluate_scenarios(
    const std::vector<acc::Scenario>& scenarios, std::size_t cases,
    std::size_t episodes, std::size_t steps, std::uint64_t seed_base) {
  std::vector<std::future<ScenarioOutcome>> futures;
  futures.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    futures.push_back(std::async(std::launch::async, [&, i] {
      return evaluate_scenario(scenarios[i], cases, episodes, steps,
                               seed_base + 977 * i);
    }));
  }
  std::vector<ScenarioOutcome> out;
  out.reserve(scenarios.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

}  // namespace oic::benchutil
