/// \file bench_kernels.cpp
/// Standalone per-kernel, per-ISA microbench: times every dispatch-table
/// entry (linalg/dispatch.hpp) through both the scalar and the AVX2
/// tables on hot-path-representative shapes and reports ns/op and GB/s
/// (see bench_kernels.hpp for the shared measurement code -- the same
/// sweep feeds bench_throughput's "kernels" JSON section).
///
/// Flags: --budget-ms=N (default 20; timing-run wall target per kernel
/// per ISA), --json=PATH (write a machine-readable document).
///
/// The emitted document carries the shared jsonout::Doc envelope, so
/// scripts/check_bench_json.py --self validates it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_kernels.hpp"
#include "bench_util.hpp"
#include "common/jsonout.hpp"
#include "linalg/simd.hpp"

int main(int argc, char** argv) {
  using namespace oic;

  const std::size_t budget_ms =
      std::max<std::size_t>(1, benchutil::flag(argc, argv, "budget-ms", 20));
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  std::printf("=== Kernel microbench: per-ISA dispatch table ===\n");
  std::printf("active ISA: %s (compiled avx2: %s, cpu avx2: %s), budget %zu ms\n\n",
              linalg::simd::active_isa_name(),
              linalg::simd::compiled_avx2() ? "yes" : "no",
              linalg::simd::cpu_has_avx2() ? "yes" : "no", budget_ms);

  const std::vector<benchkernels::KernelStat> stats =
      benchkernels::run(static_cast<double>(budget_ms));
  benchkernels::print(stats);

  if (json_path != nullptr) {
    jsonout::Doc doc("kernels");
    std::string& out = doc.body();
    jsonout::append_format(out, "  \"config\": {\"budget_ms\": %zu},\n", budget_ms);
    benchkernels::append_json(out, stats);
    const std::string body = std::move(doc).finish(false);
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "could not write %s\n", json_path);
      return 1;
    }
  }
  return 0;
}
