/// \file acc_intermittent.cpp
/// The paper's headline case study end-to-end: adaptive cruise control
/// with a tube-RMPC safe controller, opportunistically skipped by a
/// double-DQN agent (Sec. IV).  Trains a small agent, then compares
/// RMPC-only, bang-bang, and DRL-based intermittent control on the
/// sinusoidal front-vehicle scenario and prints a per-policy summary.
///
/// Run: ./build/examples/acc_intermittent  [--episodes=N] [--cases=N]

#include <cstdio>
#include <cstring>

#include "acc/harness.hpp"
#include "acc/trainer.hpp"
#include "common/stats.hpp"
#include "core/drl_policy.hpp"

namespace {
std::size_t arg_flag(int argc, char** argv, const char* key, std::size_t fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
  }
  return fallback;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace oic;
  const std::size_t episodes = arg_flag(argc, argv, "episodes", 120);
  const std::size_t cases = arg_flag(argc, argv, "cases", 25);

  std::printf("ACC case study (Sec. IV): ego follows a front vehicle with\n");
  std::printf("sinusoidal speed; gap must stay in [120, 180] m.\n\n");

  std::printf("[1/4] building plant, RMPC (N=10), XI = feasible set, X'...\n");
  acc::AccCase acc_case;
  const auto bb_xi = acc_case.sets().xi.bounding_box();
  const auto bb_xp = acc_case.sets().x_prime.bounding_box();
  std::printf("      XI: %zu facets, gap-error range [%.1f, %.1f] m\n",
              acc_case.sets().xi.num_constraints(), bb_xi->first[0], bb_xi->second[0]);
  std::printf("      X': %zu facets, speed-error range [%.2f, %.2f] m/s\n",
              acc_case.sets().x_prime.num_constraints(), bb_xp->first[1],
              bb_xp->second[1]);

  const acc::Scenario scen = acc::fig4_scenario(acc_case.params());
  std::printf("[2/4] training the DQN skipping agent (%zu episodes)...\n", episodes);
  acc::TrainerConfig tcfg;
  tcfg.episodes = episodes;
  acc::TrainingLog log;
  const acc::TrainedAgent trained = acc::train_dqn(acc_case, scen, tcfg, &log);
  std::printf("      done; final-episode skip ratio %.2f, reward %.4f\n",
              log.episode_skip_ratio.back(), log.episode_reward.back());

  std::printf("[3/4] evaluating %zu paired cases x 100 steps...\n", cases);
  core::BangBangPolicy bangbang;
  const auto drl = trained.make_policy();
  const auto cmp = acc::compare_policies(acc_case, scen, {&bangbang, drl.get()},
                                         cases, 100, 4242);

  std::printf("[4/4] results (fuel saving vs RMPC-only):\n\n");
  std::printf("  %-34s %10s %12s %10s\n", "policy", "saving", "skipped/100", "safe");
  std::printf("  %-34s %9.2f%% %12s %10s\n", "RMPC-only (baseline)", 0.0, "0.0", "yes");
  for (std::size_t p = 0; p < cmp.policy_names.size(); ++p) {
    std::printf("  %-34s %9.2f%% %12.1f %10s\n", cmp.policy_names[p].c_str(),
                100.0 * mean(cmp.savings[p]), cmp.mean_skipped[p],
                cmp.any_violation[p] ? "NO!" : "yes");
  }

  std::printf("\nInterpretation: both skipping schemes save fuel while Theorem 1\n");
  std::printf("keeps the loop inside the invariant set.  With a full training\n");
  std::printf("budget (bench_fig4 uses 200 episodes) the learned policy overtakes\n");
  std::printf("blind bang-bang by timing its controller runs to the vf pattern.\n");
  return 0;
}
