/// \file safety_monitor_demo.cpp
/// Theorem 1 made visible: an adversarial skipping policy (decides at
/// random, trying nothing clever) drives the ACC plant while the monitor
/// of Algorithm 1 overrides it whenever the state leaves the strengthened
/// safe set X'.  The demo prints an ASCII phase portrait of X, XI, X' and
/// the trajectory, and verifies the loop never leaves XI.
///
/// Run: ./build/examples/safety_monitor_demo

#include <cstdio>
#include <string>
#include <vector>

#include "acc/harness.hpp"
#include "core/runner.hpp"

namespace {

/// Uniform-random skipping decisions: the "any Omega" of Theorem 1.
class AdversarialPolicy final : public oic::core::SkipPolicy {
 public:
  explicit AdversarialPolicy(std::uint64_t seed) : rng_(seed) {}
  int decide(const oic::linalg::Vector&, const oic::core::WHistory&) override {
    return rng_.bernoulli(0.5) ? 1 : 0;
  }
  std::string name() const override { return "adversarial-random"; }

 private:
  oic::Rng rng_;
};

}  // namespace

int main() {
  using namespace oic;
  using linalg::Vector;

  std::printf("Safety monitor demo: a RANDOM skipping policy on the ACC plant.\n");
  std::printf("Theorem 1: the monitor keeps the loop inside XI regardless.\n\n");

  acc::AccCase acc_case;
  AdversarialPolicy policy(2020);
  core::IntermittentConfig icfg;
  icfg.u_skip = acc_case.u_skip();
  core::IntermittentController ic(acc_case.system(), acc_case.sets(), acc_case.rmpc(),
                                  policy, icfg);

  // Worst-case disturbance: the front vehicle bangs between its speed limits.
  Rng rng(99);
  Vector x0 = acc_case.sample_x0(rng);
  std::vector<Vector> visited;
  core::RunConfig rcfg;
  rcfg.steps = 300;
  const auto rr = core::run_closed_loop(
      acc_case.system(), ic, x0,
      [&](std::size_t) {
        const double vf = rng.bernoulli(0.5) ? acc_case.params().vf_max
                                             : acc_case.params().vf_min;
        return Vector{acc_case.w_from_vf(vf)};
      },
      rcfg,
      [&](sim::TraceStep& step, const Vector&) { visited.push_back(step.x); });

  // ---- ASCII phase portrait: gap error (x) vs speed error (y). ----
  const int w = 64, h = 24;
  const auto bbx = acc_case.sets().x.bounding_box();
  const double x_lo = bbx->first[0] * 1.05, x_hi = bbx->second[0] * 1.05;
  const double y_lo = bbx->first[1] * 1.05, y_hi = bbx->second[1] * 1.05;
  std::vector<std::string> canvas(h, std::string(w, ' '));
  auto plot = [&](double px, double py, char c) {
    const int cx = static_cast<int>((px - x_lo) / (x_hi - x_lo) * (w - 1));
    const int cy = static_cast<int>((py - y_lo) / (y_hi - y_lo) * (h - 1));
    if (cx < 0 || cx >= w || cy < 0 || cy >= h) return;
    char& cell =
        canvas[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)];
    // Trajectory marks win over set shading.
    if (c == '*' || cell == ' ' || (c == '+' && cell == '.')) cell = c;
  };
  for (int iy = 0; iy < h * 2; ++iy) {
    for (int ix = 0; ix < w * 2; ++ix) {
      const double px = x_lo + (x_hi - x_lo) * ix / (w * 2 - 1);
      const double py = y_lo + (y_hi - y_lo) * iy / (h * 2 - 1);
      const Vector p{px, py};
      if (acc_case.sets().x_prime.contains(p))
        plot(px, py, '+');
      else if (acc_case.sets().xi.contains(p))
        plot(px, py, '.');
    }
  }
  for (const auto& v : visited) plot(v[0], v[1], '*');

  std::printf("phase portrait (gap error vs speed error):\n");
  std::printf("  '+' = strengthened safe set X', '.' = XI \\ X', '*' = trajectory\n\n");
  for (const auto& row : canvas) std::printf("  |%s|\n", row.c_str());

  std::printf("\n%zu steps: skipped=%zu, monitor overrides=%zu\n", rr.trace.size(),
              rr.trace.skipped_steps(), rr.trace.forced_steps());
  std::printf("left XI: %s, left X: %s  (Theorem 1 requires: no, no)\n",
              rr.left_xi ? "YES (BUG!)" : "no", rr.left_x ? "YES (BUG!)" : "no");
  return (rr.left_xi || rr.left_x) ? 1 : 0;
}
