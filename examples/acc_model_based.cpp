/// \file acc_model_based.cpp
/// The model-based skipping path of the paper (Sec. III-B.1): when the
/// controller is analytic (here: the LQR gain) and the disturbance trace
/// is known (a noise-free Equation-8 sinusoid), the skipping choice comes
/// from the horizon-H optimization of Equation 6 -- solved both by the
/// exact sequence search and by the big-M MIP, which must agree.
///
/// Run: ./build/examples/acc_model_based

#include <cmath>
#include <cstdio>

#include "acc/harness.hpp"
#include "core/model_based.hpp"

namespace {

/// Noise-free Equation-8 sinusoid as a disturbance oracle.
class SinusoidOracle final : public oic::core::DisturbanceOracle {
 public:
  explicit SinusoidOracle(const oic::acc::AccCase& acc) : acc_(acc) {}
  oic::linalg::Vector at(std::size_t t) const override {
    const auto& p = acc_.params();
    const double vf =
        p.v_ref() + 9.0 * std::sin(M_PI / 2.0 * p.delta * static_cast<double>(t));
    return oic::linalg::Vector{acc_.w_from_vf(vf)};
  }

 private:
  const oic::acc::AccCase& acc_;
};

}  // namespace

int main() {
  using namespace oic;
  std::printf("Model-based opportunistic skipping (Equation 6) on the ACC plant\n");
  std::printf("with a known sinusoidal front vehicle and the analytic LQR law.\n\n");

  acc::AccCase acc_case;
  control::LinearFeedback kappa(acc_case.lqr_gain());
  SinusoidOracle oracle(acc_case);

  core::ModelBasedConfig cfg;
  cfg.horizon = 8;
  cfg.energy_offset = acc_case.energy_offset();
  core::ModelBasedPolicy exact(acc_case.system(), acc_case.sets(), kappa,
                               acc_case.u_skip(), oracle, cfg);
  core::ModelBasedConfig mip_cfg = cfg;
  mip_cfg.solver = core::ModelBasedConfig::Solver::kBigMMip;
  core::ModelBasedPolicy mip(acc_case.system(), acc_case.sets(), kappa,
                             acc_case.u_skip(), oracle, mip_cfg);

  // Walk the closed loop under the exact policy and show the decisions.
  Rng rng(7);
  linalg::Vector x = acc_case.sample_x0(rng);
  std::printf(" t |   gap     speed |  z  plan (z* over horizon) | cost   solvers\n");
  std::printf("---+-----------------+----------------------------+----------------\n");
  std::size_t skipped = 0;
  for (std::size_t t = 0; t < 30; ++t) {
    const bool in_xprime = acc_case.sets().x_prime.contains(x);
    int z = 1;
    std::string plan = "(monitor forced z=1)";
    char agree = '-';
    if (in_xprime) {
      z = exact.decide(x, {});
      const int zm = mip.decide(x, {});
      agree = (z == zm || std::abs(exact.last().planned_cost -
                                   mip.last().planned_cost) < 1e-5)
                  ? 'y'
                  : 'N';
      plan.clear();
      for (int zi : exact.last().planned_z) plan += zi ? '1' : '0';
    } else {
      exact.decide(x, {});  // keep the policy clocks aligned with time
      mip.decide(x, {});
    }
    linalg::Vector u = z == 1 ? kappa.control(x) : acc_case.u_skip();
    if (!acc_case.system().u_set().contains(u, 1e-9)) u = acc_case.u_skip();
    if (z == 0) ++skipped;

    const auto [s, v] = acc_case.from_shifted(x);
    std::printf("%2zu | %6.1f m %5.1f m/s |  %d  %-25s | %6.2f  agree=%c\n", t, s, v, z,
                plan.c_str(), exact.last().feasible ? exact.last().planned_cost : -1.0,
                agree);
    x = acc_case.system().step(x, u, oracle.at(t));
  }
  std::printf("\nskipped %zu / 30 steps; exact search and MIP agreed on every "
              "consulted step.\n",
              skipped);
  return 0;
}
