/// \file quickstart.cpp
/// Five-minute tour of the library on the simplest possible plant: a
/// disturbed double integrator with an LQR safe controller.
///
///   1. describe the plant and its constraint polytopes (AffineLTI);
///   2. synthesize a safe controller (dlqr -> LinearFeedback);
///   3. certify it: maximal robust control invariant set XI (Definition 1);
///   4. build the strengthened safe set X' = B(XI, 0) n XI (Definition 3);
///   5. run Algorithm 1 with the bang-bang skipping policy and watch the
///      monitor keep the loop inside XI while most control steps are
///      skipped.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/random.hpp"
#include "control/invariant.hpp"
#include "control/lqr.hpp"
#include "core/intermittent.hpp"
#include "core/runner.hpp"
#include "core/safe_sets.hpp"

int main() {
  using namespace oic;
  using linalg::Matrix;
  using linalg::Vector;
  using poly::HPolytope;

  // --- 1. the plant: x+ = A x + B u + w,  |x_i| <= 5, |u| <= 2, |w_i| <= 0.04.
  const double dt = 0.1;
  const Matrix a{{1, dt}, {0, 1}};
  const Matrix b{{0.5 * dt * dt}, {dt}};
  const auto sys = control::AffineLTI::canonical(
      a, b, HPolytope::sym_box(Vector{5, 5}), HPolytope::sym_box(Vector{2}),
      HPolytope::sym_box(Vector{0.04, 0.04}));
  std::printf("plant: double integrator, nx=%zu nu=%zu, |w| <= 0.04\n", sys.nx(),
              sys.nu());

  // --- 2. a safe controller: discrete LQR.
  const auto lqr = control::dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  control::LinearFeedback kappa(lqr.k);
  std::printf("LQR gain K = [%.3f, %.3f], closed-loop spectral radius %.3f\n",
              lqr.k(0, 0), lqr.k(0, 1),
              control::spectral_radius_estimate(sys.a() + sys.b() * lqr.k));

  // --- 3. certify: the maximal robust control invariant set of kappa.
  const auto inv = control::maximal_robust_control_invariant(sys, lqr.k, Vector{0.0});
  std::printf("robust control invariant set XI: %zu facets (converged=%s)\n",
              inv.set.num_constraints(), inv.converged ? "yes" : "no");

  // --- 4. strengthened safe set (Definition 3).
  const auto sets = core::compute_safe_sets(sys, inv.set, Vector{0.0});
  const auto ball_xi = sets.xi.chebyshev();
  const auto ball_xp = sets.x_prime.chebyshev();
  std::printf("X' = B(XI,0) n XI: %zu facets; Chebyshev radii XI=%.3f, X'=%.3f\n",
              sets.x_prime.num_constraints(), ball_xi.radius, ball_xp.radius);
  std::printf("nesting X' c XI c X verified: %s\n",
              core::verify_nesting(sets) ? "yes" : "NO");

  // --- 5. Algorithm 1 with bang-bang skipping (Equation 7).
  core::BangBangPolicy policy;
  core::IntermittentConfig icfg;
  icfg.u_skip = Vector{0.0};
  core::IntermittentController ic(sys, sets, kappa, policy, icfg);

  Rng rng(2020);
  core::RunConfig rcfg;
  rcfg.steps = 200;
  const auto rr = core::run_closed_loop(
      sys, ic, Vector{1.0, 0.5},
      [&](std::size_t) {
        return Vector{rng.uniform(-0.04, 0.04), rng.uniform(-0.04, 0.04)};
      },
      rcfg);

  std::printf("\nran %zu steps from x0 = (1.0, 0.5):\n", rr.trace.size());
  std::printf("  skipped control computations : %zu / %zu (%.0f %%)\n",
              rr.trace.skipped_steps(), rr.trace.size(),
              100.0 * rr.trace.skip_ratio());
  std::printf("  monitor interventions        : %zu\n", rr.trace.forced_steps());
  std::printf("  total actuation energy       : %.3f (always-run for comparison: ",
              rr.trace.total_energy());

  // Same rollout without skipping.
  core::AlwaysRunPolicy always;
  core::IntermittentController ic2(sys, sets, kappa, always, icfg);
  Rng rng2(2020);
  const auto rr2 = core::run_closed_loop(
      sys, ic2, Vector{1.0, 0.5},
      [&](std::size_t) {
        return Vector{rng2.uniform(-0.04, 0.04), rng2.uniform(-0.04, 0.04)};
      },
      rcfg);
  std::printf("%.3f)\n", rr2.trace.total_energy());
  std::printf("  left XI (must be false)      : %s\n", rr.left_xi ? "YES" : "no");
  std::printf("  left X  (must be false)      : %s\n", rr.left_x ? "YES" : "no");
  std::printf("\nDone.  See examples/acc_intermittent.cpp for the full ACC case "
              "study.\n");
  return 0;
}
