// Tests for the core framework: safe-set construction (Definition 3), the
// monitor of Algorithm 1, and -- most importantly -- a property-test of
// Theorem 1: no skipping policy, however adversarial, can drive the system
// out of the robust invariant set.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "control/invariant.hpp"
#include "control/lqr.hpp"
#include "core/intermittent.hpp"
#include "core/policy.hpp"
#include "core/runner.hpp"
#include "core/safe_sets.hpp"

namespace {

using oic::Rng;
using oic::control::AffineLTI;
using oic::control::LinearFeedback;
using oic::core::compute_safe_sets;
using oic::core::IntermittentConfig;
using oic::core::IntermittentController;
using oic::core::SafeSets;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

/// Shared fixture: a double integrator with an LQR safe controller and its
/// maximal robust control invariant set.
struct Rig {
  AffineLTI sys;
  Matrix k;
  SafeSets sets;

  static const Rig& get() {
    static Rig rig = [] {
      const double dt = 0.1;
      Matrix a{{1, dt}, {0, 1}};
      Matrix b{{0.5 * dt * dt}, {dt}};
      AffineLTI sys = AffineLTI::canonical(
          a, b, HPolytope::sym_box(Vector{5, 5}), HPolytope::sym_box(Vector{2}),
          HPolytope::sym_box(Vector{0.04, 0.04}));
      const auto lqr = oic::control::dlqr(sys.a(), sys.b(), Matrix::identity(2),
                                          Matrix{{1.0}});
      const auto inv =
          oic::control::maximal_robust_control_invariant(sys, lqr.k, Vector{0.0});
      OIC_CHECK(inv.converged, "test rig: invariant iteration failed");
      SafeSets sets = compute_safe_sets(sys, inv.set, Vector{0.0});
      return Rig{std::move(sys), lqr.k, std::move(sets)};
    }();
    return rig;
  }
};

TEST(SafeSets, NestingHolds) {
  const Rig& rig = Rig::get();
  EXPECT_TRUE(verify_nesting(rig.sets));
  EXPECT_FALSE(rig.sets.x_prime.is_empty());
}

TEST(SafeSets, StrengthenedPropertyHolds) {
  const Rig& rig = Rig::get();
  EXPECT_TRUE(oic::core::verify_strengthened_property(rig.sys, rig.sets, Vector{0.0}));
}

TEST(SafeSets, XPrimeStrictlyInsideXiWhenSkipDrifts) {
  // Skipping applies zero input to a marginally-stable plant, so some edge
  // of XI must be excluded from X'.
  const Rig& rig = Rig::get();
  EXPECT_FALSE(contains_polytope(rig.sets.x_prime, rig.sets.xi, 1e-6));
}

TEST(SafeSets, RejectsEmptyXi) {
  const Rig& rig = Rig::get();
  const HPolytope empty(Matrix{{1, 0}, {-1, 0}}, Vector{0.0, -1.0});
  EXPECT_THROW(compute_safe_sets(rig.sys, empty, Vector{0.0}), oic::PreconditionError);
}

TEST(SafeSets, RejectsXiOutsideX) {
  const Rig& rig = Rig::get();
  const HPolytope too_big = HPolytope::sym_box(Vector{50, 50});
  EXPECT_THROW(compute_safe_sets(rig.sys, too_big, Vector{0.0}),
               oic::PreconditionError);
}

TEST(Monitor, ForcesControllerOutsideXPrime) {
  const Rig& rig = Rig::get();
  LinearFeedback kappa(rig.k);
  oic::core::BangBangPolicy policy;
  IntermittentConfig cfg;
  cfg.u_skip = Vector{0.0};
  IntermittentController ic(rig.sys, rig.sets, kappa, policy, cfg);

  // Find a state inside XI but outside X' (exists by the test above).
  Rng rng(3);
  const auto bb = rig.sets.xi.bounding_box();
  ASSERT_TRUE(bb.has_value());
  Vector x_out;
  bool found = false;
  for (int i = 0; i < 5000 && !found; ++i) {
    Vector x{rng.uniform(bb->first[0], bb->second[0]),
             rng.uniform(bb->first[1], bb->second[1])};
    if (rig.sets.xi.contains(x) && !rig.sets.x_prime.contains(x, 1e-7)) {
      x_out = x;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  const auto d = ic.decide(x_out);
  EXPECT_EQ(d.z, 1);
  EXPECT_TRUE(d.forced);
  EXPECT_FALSE(d.policy_consulted);
  EXPECT_EQ(ic.forced_steps(), 1u);
}

TEST(Monitor, ConsultsPolicyInsideXPrime) {
  const Rig& rig = Rig::get();
  LinearFeedback kappa(rig.k);
  oic::core::BangBangPolicy policy;
  IntermittentConfig cfg;
  cfg.u_skip = Vector{0.0};
  IntermittentController ic(rig.sys, rig.sets, kappa, policy, cfg);

  const auto ball = rig.sets.x_prime.chebyshev();
  ASSERT_TRUE(ball.feasible);
  const auto d = ic.decide(ball.center);
  EXPECT_EQ(d.z, 0);
  EXPECT_FALSE(d.forced);
  EXPECT_TRUE(d.policy_consulted);
  EXPECT_TRUE(approx_equal(d.u, Vector{0.0}, 0.0));
}

TEST(Monitor, StrictModeThrowsOutsideXi) {
  const Rig& rig = Rig::get();
  LinearFeedback kappa(rig.k);
  oic::core::AlwaysRunPolicy policy;
  IntermittentConfig cfg;
  cfg.u_skip = Vector{0.0};
  IntermittentController ic(rig.sys, rig.sets, kappa, policy, cfg);
  EXPECT_THROW(ic.decide(Vector{100, 100}), oic::NumericalError);
}

TEST(Monitor, SkipInputMustBeAdmissible) {
  const Rig& rig = Rig::get();
  LinearFeedback kappa(rig.k);
  oic::core::BangBangPolicy policy;
  IntermittentConfig cfg;
  cfg.u_skip = Vector{100.0};  // outside U
  EXPECT_THROW(IntermittentController(rig.sys, rig.sets, kappa, policy, cfg),
               oic::PreconditionError);
}

TEST(Monitor, RecordTransitionInfersDisturbance) {
  const Rig& rig = Rig::get();
  LinearFeedback kappa(rig.k);
  oic::core::BangBangPolicy policy;
  IntermittentConfig cfg;
  cfg.u_skip = Vector{0.0};
  cfg.w_memory = 3;
  IntermittentController ic(rig.sys, rig.sets, kappa, policy, cfg);

  const Vector x{0.1, 0.2};
  const Vector u{0.5};
  const Vector w{0.03, -0.02};
  const Vector x_next = rig.sys.step(x, u, w);
  ic.record_transition(x, u, x_next);
  ASSERT_EQ(ic.w_history().size(), 1u);
  EXPECT_TRUE(approx_equal(ic.w_history()[0], w, 1e-12));

  for (int i = 0; i < 5; ++i) ic.record_transition(x, u, x_next);
  EXPECT_EQ(ic.w_history().size(), 3u);  // memory cap
}

TEST(Policies, BaselineBehaviours) {
  oic::core::AlwaysRunPolicy run;
  oic::core::BangBangPolicy skip;
  oic::core::PeriodicPolicy periodic(3);
  const Vector x{0, 0};
  EXPECT_EQ(run.decide(x, {}), 1);
  EXPECT_EQ(skip.decide(x, {}), 0);
  EXPECT_EQ(periodic.decide(x, {}), 1);
  EXPECT_EQ(periodic.decide(x, {}), 0);
  EXPECT_EQ(periodic.decide(x, {}), 0);
  EXPECT_EQ(periodic.decide(x, {}), 1);
  periodic.reset();
  EXPECT_EQ(periodic.decide(x, {}), 1);
  EXPECT_THROW(oic::core::PeriodicPolicy(0), oic::PreconditionError);
}

TEST(Runner, TraceAccountingAndHook) {
  const Rig& rig = Rig::get();
  LinearFeedback kappa(rig.k);
  oic::core::PeriodicPolicy policy(2);
  IntermittentConfig cfg;
  cfg.u_skip = Vector{0.0};
  IntermittentController ic(rig.sys, rig.sets, kappa, policy, cfg);

  Rng rng(5);
  int hook_calls = 0;
  const auto hook = [&](oic::sim::TraceStep& step, const Vector&) {
    step.fuel = 1.0;
    ++hook_calls;
  };
  oic::core::RunConfig rcfg;
  rcfg.steps = 40;
  const auto rr = oic::core::run_closed_loop(
      rig.sys, ic, Vector{0.0, 0.0},
      [&](std::size_t) {
        return Vector{rng.uniform(-0.04, 0.04), rng.uniform(-0.04, 0.04)};
      },
      rcfg, hook);
  EXPECT_EQ(rr.trace.size(), 40u);
  EXPECT_EQ(hook_calls, 40);
  EXPECT_DOUBLE_EQ(rr.trace.total_fuel(), 40.0);
  EXPECT_FALSE(rr.left_x);
  EXPECT_FALSE(rr.left_xi);
}

/// An adversarial policy: decides uniformly at random -- the worst case for
/// Theorem 1, which must hold for ANY Omega.
class RandomPolicy final : public oic::core::SkipPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  int decide(const Vector&, const oic::core::WHistory&) override {
    return rng_.bernoulli(0.5) ? 1 : 0;
  }
  std::string name() const override { return "random"; }

 private:
  Rng rng_;
};

// Theorem 1 property test: random policies + adversarial vertex
// disturbances never leave XI (and hence X).
class Theorem1Property : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Property, NeverLeavesInvariantSet) {
  const Rig& rig = Rig::get();
  LinearFeedback kappa(rig.k);
  RandomPolicy policy{static_cast<std::uint64_t>(GetParam() * 881 + 3)};
  IntermittentConfig cfg;
  cfg.u_skip = Vector{0.0};
  IntermittentController ic(rig.sys, rig.sets, kappa, policy, cfg);

  Rng rng{static_cast<std::uint64_t>(GetParam() * 7919 + 101)};
  // Start anywhere in XI (Algorithm 1 line 2).
  const auto bb = rig.sets.xi.bounding_box();
  ASSERT_TRUE(bb.has_value());
  Vector x0;
  do {
    x0 = Vector{rng.uniform(bb->first[0], bb->second[0]),
                rng.uniform(bb->first[1], bb->second[1])};
  } while (!rig.sets.xi.contains(x0, -1e-9));

  // Adversarial disturbances: always a vertex of W.
  oic::core::RunConfig rcfg;
  rcfg.steps = 120;
  const auto rr = oic::core::run_closed_loop(
      rig.sys, ic, x0,
      [&](std::size_t) {
        return Vector{rng.bernoulli(0.5) ? 0.04 : -0.04,
                      rng.bernoulli(0.5) ? 0.04 : -0.04};
      },
      rcfg);
  EXPECT_FALSE(rr.left_xi) << "Theorem 1 violated at step " << rr.first_violation;
  EXPECT_FALSE(rr.left_x);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Property, ::testing::Range(0, 30));

}  // namespace
