// Tests for oic::control basics: AffineLTI, controllers, LQR synthesis.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "control/controller.hpp"
#include "control/lqr.hpp"
#include "control/lti.hpp"

namespace {

using oic::control::AffineLTI;
using oic::control::dlqr;
using oic::control::LinearFeedback;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

AffineLTI double_integrator() {
  const double dt = 0.1;
  Matrix a{{1, dt}, {0, 1}};
  Matrix b{{0.5 * dt * dt}, {dt}};
  HPolytope x = HPolytope::sym_box(Vector{5, 5});
  HPolytope u = HPolytope::sym_box(Vector{2});
  HPolytope w = HPolytope::sym_box(Vector{0.01, 0.01});
  return AffineLTI::canonical(a, b, x, u, w);
}

TEST(AffineLTI, DimensionsAndAccessors) {
  const AffineLTI sys = double_integrator();
  EXPECT_EQ(sys.nx(), 2u);
  EXPECT_EQ(sys.nu(), 1u);
  EXPECT_EQ(sys.nw(), 2u);
  EXPECT_DOUBLE_EQ(sys.a()(0, 1), 0.1);
}

TEST(AffineLTI, StepMatchesHandComputation) {
  const AffineLTI sys = double_integrator();
  const Vector x{1.0, 2.0};
  const Vector u{0.5};
  const Vector w{0.001, -0.002};
  const Vector next = sys.step(x, u, w);
  EXPECT_NEAR(next[0], 1.0 + 0.1 * 2.0 + 0.005 * 0.5 + 0.001, 1e-12);
  EXPECT_NEAR(next[1], 2.0 + 0.1 * 0.5 - 0.002, 1e-12);
}

TEST(AffineLTI, NominalStepDropsDisturbance) {
  const AffineLTI sys = double_integrator();
  const Vector x{1.0, 2.0};
  const Vector u{0.5};
  EXPECT_TRUE(approx_equal(sys.step_nominal(x, u), sys.step(x, u, Vector{0, 0}), 1e-12));
}

TEST(AffineLTI, DimensionMismatchThrows) {
  const AffineLTI sys = double_integrator();
  EXPECT_THROW(sys.step(Vector{1.0}, Vector{0.0}, Vector{0, 0}),
               oic::PreconditionError);
  EXPECT_THROW(sys.step(Vector{1, 2}, Vector{0, 0}, Vector{0, 0}),
               oic::PreconditionError);
}

TEST(AffineLTI, ConstructorValidatesShapes) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{0}, {1}};
  EXPECT_THROW(AffineLTI::canonical(a, b, HPolytope::sym_box(Vector{1}),  // X wrong dim
                                    HPolytope::sym_box(Vector{1}),
                                    HPolytope::sym_box(Vector{1, 1})),
               oic::PreconditionError);
}

TEST(AffineLTI, DisturbanceInStateSpaceIdentity) {
  const AffineLTI sys = double_integrator();
  const HPolytope d = sys.disturbance_in_state_space();
  EXPECT_TRUE(approx_equal(d, HPolytope::sym_box(Vector{0.01, 0.01}), 1e-8));
}

TEST(AffineLTI, DisturbanceInStateSpaceRectangularE) {
  // Scalar disturbance entering only the first state: E = [1; 0].
  Matrix a{{1, 0.1}, {0, 1}};
  Matrix b{{0}, {0.1}};
  Matrix e{{1}, {0}};
  const AffineLTI sys(a, b, e, Vector{0, 0}, HPolytope::sym_box(Vector{5, 5}),
                      HPolytope::sym_box(Vector{2}), HPolytope::sym_box(Vector{0.3}));
  const HPolytope d = sys.disturbance_in_state_space();
  ASSERT_EQ(d.dim(), 2u);
  EXPECT_TRUE(d.contains(Vector{0.3, 0.0}, 1e-7));
  EXPECT_TRUE(d.contains(Vector{-0.3, 0.0}, 1e-7));
  EXPECT_FALSE(d.contains(Vector{0.0, 0.05}));
  EXPECT_FALSE(d.contains(Vector{0.35, 0.0}));
}

TEST(LinearFeedback, ComputesGainTimesState) {
  LinearFeedback fb(Matrix{{-1.0, -2.0}});
  const Vector u = fb.control(Vector{1.0, 0.5});
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], -2.0);
  EXPECT_EQ(fb.invocations(), 1u);
  fb.control(Vector{0, 0});
  EXPECT_EQ(fb.invocations(), 2u);
}

TEST(LinearFeedback, AffineOffset) {
  LinearFeedback fb(Matrix{{-1.0, 0.0}}, Vector{3.0});
  EXPECT_DOUBLE_EQ(fb.control(Vector{1.0, 0.0})[0], 2.0);
}

TEST(Dlqr, StabilizesDoubleIntegrator) {
  const AffineLTI sys = double_integrator();
  const auto lqr = dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  ASSERT_TRUE(lqr.converged);
  const Matrix a_cl = sys.a() + sys.b() * lqr.k;
  EXPECT_LT(oic::control::spectral_radius_estimate(a_cl), 1.0);
}

TEST(Dlqr, GainSatisfiesRiccatiFixedPoint) {
  const AffineLTI sys = double_integrator();
  const Matrix q = Matrix::identity(2);
  const Matrix r{{0.5}};
  const auto lqr = dlqr(sys.a(), sys.b(), q, r);
  ASSERT_TRUE(lqr.converged);
  // P = Q + A'PA - A'PB (R+B'PB)^{-1} B'PA evaluated at the returned P.
  const Matrix at = sys.a().transposed();
  const Matrix bt = sys.b().transposed();
  const Matrix gram = r + bt * lqr.p * sys.b();
  const Matrix rhs =
      q + at * lqr.p * sys.a() -
      at * lqr.p * sys.b() * oic::linalg::LU(gram).solve(bt * lqr.p * sys.a());
  EXPECT_TRUE(approx_equal(lqr.p, rhs, 1e-6));
}

TEST(Dlqr, ClosedLoopBeatsOpenLoopDecay) {
  const AffineLTI sys = double_integrator();
  const auto lqr = dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  // Simulate: the state norm must shrink substantially over 100 steps.
  Vector x{2.0, -1.0};
  LinearFeedback fb(lqr.k);
  for (int t = 0; t < 100; ++t) x = sys.step_nominal(x, fb.control(x));
  EXPECT_LT(x.norm2(), 1e-3);
}

TEST(Dlqr, ShapeValidation) {
  EXPECT_THROW(dlqr(Matrix{{1, 0}}, Matrix{{0}, {1}}, Matrix::identity(2),
                    Matrix{{1.0}}),
               oic::PreconditionError);
}

TEST(SpectralRadius, KnownValues) {
  EXPECT_NEAR(oic::control::spectral_radius_estimate(Matrix{{0.5, 0}, {0, 0.25}}), 0.5,
              1e-6);
  EXPECT_NEAR(oic::control::spectral_radius_estimate(Matrix{{2.0}}), 2.0, 1e-6);
  EXPECT_NEAR(oic::control::spectral_radius_estimate(Matrix::zero(2, 2)), 0.0, 1e-12);
  // Rotation by 90 degrees has spectral radius 1.
  EXPECT_NEAR(oic::control::spectral_radius_estimate(Matrix{{0, -1}, {1, 0}}), 1.0,
              1e-6);
}

}  // namespace
