// Tests for the Monte Carlo campaign layer (src/mc): scenario-family
// determinism and band respect, the mixture profile's parameter
// validation, campaign bit-identity across worker counts and across
// checkpoint/resume boundaries, checkpoint format round-trip and
// rejection, and the campaign JSON document.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "mc/campaign.hpp"
#include "mc/family.hpp"
#include "mc/profile.hpp"

namespace {

using oic::Rng;
using oic::eval::ScenarioRegistry;
using oic::eval::SignalBand;
using oic::mc::CampaignResult;
using oic::mc::CampaignSpec;
using oic::mc::CellStats;
using oic::mc::Checkpoint;
using oic::mc::MixtureParams;
using oic::mc::MixtureProfile;
using oic::mc::PolicyStats;
using oic::mc::ScenarioFamily;

// Shared scratch directory: one certificate cache for every campaign in
// this binary (toy2d synthesis runs once, later campaigns are
// file-read-bound) plus checkpoint files.
std::string scratch_dir() {
  static const std::string dir = [] {
    auto d = std::filesystem::temp_directory_path() / "oic-test-mc";
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d.string();
  }();
  return dir;
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.plants = {"toy2d"};
  spec.families = {"bursts", "ramps"};
  spec.policies = {"bang-bang", "periodic-5"};
  spec.episodes = 30;
  spec.steps = 40;
  spec.seed = 77;
  spec.block = 8;
  spec.workers = 1;
  spec.cert_dir = scratch_dir() + "/certs";
  return spec;
}

void expect_same_policy_stats(const PolicyStats& a, const PolicyStats& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.left_x_episodes, b.left_x_episodes);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.degraded_steps, b.degraded_steps);
  EXPECT_EQ(a.stale_forced, b.stale_forced);
  EXPECT_EQ(a.policy_unavail, b.policy_unavail);
  EXPECT_EQ(a.meas_dropped, b.meas_dropped);
  EXPECT_EQ(a.act_dropped, b.act_dropped);
  const auto expect_same_welford = [](const oic::Welford& x, const oic::Welford& y) {
    EXPECT_EQ(x.count(), y.count());
    EXPECT_EQ(x.mean(), y.mean());
    EXPECT_EQ(x.m2(), y.m2());
    if (x.count() > 0 && y.count() > 0) {
      EXPECT_EQ(x.min(), y.min());
      EXPECT_EQ(x.max(), y.max());
    }
  };
  expect_same_welford(a.saving, b.saving);
  expect_same_welford(a.cost, b.cost);
  expect_same_welford(a.skipped, b.skipped);
  expect_same_welford(a.degraded, b.degraded);
}

void expect_same_cells(const std::vector<CellStats>& a, const std::vector<CellStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].plant, b[i].plant);
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_EQ(a[i].episodes, b[i].episodes);
    expect_same_policy_stats(a[i].baseline, b[i].baseline);
    ASSERT_EQ(a[i].policies.size(), b[i].policies.size());
    for (std::size_t p = 0; p < a[i].policies.size(); ++p) {
      expect_same_policy_stats(a[i].policies[p], b[i].policies[p]);
    }
  }
}

// ------------------------------------------------------------- families

TEST(Family, SampleIsDeterministicInTheRngAndRespectsTheBand) {
  const SignalBand band{-2.0, 6.0};
  for (const auto& id : oic::mc::standard_family_ids()) {
    const ScenarioFamily fam = oic::mc::family_by_id(band, id);
    Rng r1(42), r2(42);
    auto s1 = fam.sample(r1);
    auto s2 = fam.sample(r2);
    EXPECT_EQ(s1.id, id);
    // Identical parameter draw + identical realization seed => identical
    // signal stream, inside the band at every step.
    s1.profile->reset(Rng(7));
    s2.profile->reset(Rng(7));
    for (int t = 0; t < 200; ++t) {
      const double v1 = s1.profile->next();
      EXPECT_DOUBLE_EQ(v1, s2.profile->next()) << id << " step " << t;
      EXPECT_GE(v1, band.lo) << id;
      EXPECT_LE(v1, band.hi) << id;
    }
    // A different parameter draw gives a different scenario (statistical
    // smoke: first 50 steps not all equal).
    Rng r3(43);
    auto s3 = fam.sample(r3);
    s3.profile->reset(Rng(7));
    s1.profile->reset(Rng(7));
    bool any_diff = false;
    for (int t = 0; t < 50; ++t) {
      any_diff = any_diff || s1.profile->next() != s3.profile->next();
    }
    EXPECT_TRUE(any_diff) << id;
  }
}

TEST(Family, UnknownIdListsKnownOnes) {
  const SignalBand band{-1.0, 1.0};
  try {
    (void)oic::mc::family_by_id(band, "nope");
    FAIL() << "expected throw";
  } catch (const oic::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("sine-mix"), std::string::npos);
  }
}

TEST(MixtureProfile, ValidatesParameters) {
  MixtureParams p;
  p.lo = 1.0;
  p.hi = -1.0;
  EXPECT_THROW(MixtureProfile{p}, oic::PreconditionError);
  p = {};
  p.lo = -1.0;
  p.hi = 1.0;
  p.center = 5.0;
  EXPECT_THROW(MixtureProfile{p}, oic::PreconditionError);
  p.center = 0.0;
  p.noise_alpha = 1.0;
  EXPECT_THROW(MixtureProfile{p}, oic::PreconditionError);
  p.noise_alpha = 0.5;
  p.burst_rate = 0.1;  // burst lengths unset
  EXPECT_THROW(MixtureProfile{p}, oic::PreconditionError);
  p.burst_len_min = 2;
  p.burst_len_max = 5;
  EXPECT_NO_THROW(MixtureProfile{p});
}

// ------------------------------------------------------------- campaigns

TEST(Campaign, BitIdenticalAcrossWorkerCounts) {
  CampaignSpec spec = small_spec();
  spec.workers = 1;
  const CampaignResult serial = run_campaign(ScenarioRegistry::builtin(), spec);
  spec.workers = 3;
  const CampaignResult parallel = run_campaign(ScenarioRegistry::builtin(), spec);
  expect_same_cells(serial.cells, parallel.cells);
  EXPECT_FALSE(serial.safety_violations);
  // toy2d under bang-bang/periodic must hold Theorem 1 on random families.
  for (const auto& cell : serial.cells) {
    for (const auto& ps : cell.policies) EXPECT_EQ(ps.violations, 0u) << ps.name;
  }
}

TEST(Campaign, BitIdenticalAcrossCheckpointResume) {
  const std::string ck = scratch_dir() + "/resume.ck";
  std::filesystem::remove(ck);

  CampaignSpec spec = small_spec();
  const CampaignResult reference = run_campaign(ScenarioRegistry::builtin(), spec);

  // Same campaign in three interrupted slices (budgeted blocks), resuming
  // the checkpoint each time, with varying worker counts for good measure.
  spec.checkpoint = ck;
  spec.checkpoint_blocks = 1;
  CampaignResult sliced;
  for (int slice = 0; slice < 3; ++slice) {
    spec.max_blocks = (slice < 2) ? 3 : 0;  // final slice runs to completion
    spec.workers = 1 + slice;
    sliced = run_campaign(ScenarioRegistry::builtin(), spec);
  }
  EXPECT_GT(sliced.resumed_blocks, 0u);
  expect_same_cells(reference.cells, sliced.cells);

  // Running again over the finished checkpoint is a no-op that still
  // reports the full statistics.
  spec.max_blocks = 0;
  const CampaignResult again = run_campaign(ScenarioRegistry::builtin(), spec);
  EXPECT_EQ(again.episodes_run, 0u);
  expect_same_cells(reference.cells, again.cells);
}

TEST(Campaign, CheckpointRoundTripAndRejection) {
  const std::string ck = scratch_dir() + "/roundtrip.ck";
  std::filesystem::remove(ck);
  CampaignSpec spec = small_spec();
  spec.checkpoint = ck;
  const CampaignResult result = run_campaign(ScenarioRegistry::builtin(), spec);

  const Checkpoint loaded = oic::mc::load_checkpoint_file(ck);
  EXPECT_EQ(loaded.fingerprint,
            oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), spec));
  expect_same_cells(loaded.cells, result.cells);

  // Save/load through streams round-trips bit for bit.
  std::stringstream ss;
  oic::mc::save_checkpoint(loaded, ss);
  const Checkpoint reloaded = oic::mc::load_checkpoint(ss);
  EXPECT_EQ(reloaded.fingerprint, loaded.fingerprint);
  expect_same_cells(reloaded.cells, loaded.cells);

  // A different campaign must refuse to resume this checkpoint.
  CampaignSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_THROW(run_campaign(ScenarioRegistry::builtin(), other),
               oic::PreconditionError);

  // Fingerprint ignores execution-only knobs...
  CampaignSpec exec = spec;
  exec.workers = 7;
  exec.checkpoint_blocks = 3;
  exec.max_blocks = 5;
  EXPECT_EQ(oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), spec),
            oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), exec));
  // ...but covers everything statistics-shaping.
  CampaignSpec blocky = spec;
  blocky.block = spec.block + 1;
  EXPECT_NE(oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), spec),
            oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), blocky));
}

TEST(Campaign, MalformedCheckpointsReject) {
  const auto parse = [](const std::string& text) {
    std::stringstream ss(text);
    return oic::mc::load_checkpoint(ss);
  };
  EXPECT_THROW(parse(""), oic::NumericalError);
  // v1 predates the fault accounting; v3 does not exist.  Both reject at
  // the header, before any stats parsing.
  EXPECT_THROW(parse("oic-mc-checkpoint v1\n"), oic::NumericalError);
  EXPECT_THROW(parse("oic-mc-checkpoint v3\n"), oic::NumericalError);
  EXPECT_THROW(parse("oic-mc-checkpoint v2\nfingerprint 1\ncells 1\n"),
               oic::NumericalError);
  EXPECT_THROW(parse("oic-mc-checkpoint v2\nfingerprint 1\ncells 999999999\n"),
               oic::NumericalError);
  // A valid document truncated before the end sentinel rejects too.
  Checkpoint ck;
  ck.fingerprint = 42;
  CellStats cell;
  cell.plant = "toy2d";
  cell.family = "bursts";
  cell.baseline.name = "always-run";
  cell.baseline.cost.add(1.0);
  cell.baseline.episodes = 1;
  ck.cells.push_back(cell);
  std::stringstream ss;
  oic::mc::save_checkpoint(ck, ss);
  const std::string doc = ss.str();
  std::stringstream truncated(doc.substr(0, doc.size() - 5));
  EXPECT_THROW(oic::mc::load_checkpoint(truncated), oic::NumericalError);
}

TEST(Campaign, FaultedCampaignBitIdenticalAcrossWorkersAndResume) {
  CampaignSpec spec = small_spec();
  spec.faults = "meas_drop:0.1,meas_delay:1,act_drop:0.05,hold,policy_drop:0.05";
  spec.workers = 1;
  const CampaignResult serial = run_campaign(ScenarioRegistry::builtin(), spec);

  // The fault model actually bites: degraded periods accumulate.
  std::uint64_t degraded = 0;
  for (const auto& cell : serial.cells) {
    degraded += cell.baseline.degraded_steps;
    for (const auto& ps : cell.policies) degraded += ps.degraded_steps;
  }
  EXPECT_GT(degraded, 0u);

  // Worker-count invariance holds with faults on (the fault stream is a
  // pure function of (seed, cell, episode), never of the partition).
  spec.workers = 3;
  const CampaignResult parallel = run_campaign(ScenarioRegistry::builtin(), spec);
  expect_same_cells(serial.cells, parallel.cells);

  // ...and so does checkpoint/resume slicing.
  const std::string ck = scratch_dir() + "/faulted.ck";
  std::filesystem::remove(ck);
  spec.checkpoint = ck;
  spec.checkpoint_blocks = 1;
  CampaignResult sliced;
  for (int slice = 0; slice < 3; ++slice) {
    spec.max_blocks = (slice < 2) ? 3 : 0;
    spec.workers = 1 + slice;
    sliced = run_campaign(ScenarioRegistry::builtin(), spec);
  }
  EXPECT_GT(sliced.resumed_blocks, 0u);
  expect_same_cells(serial.cells, sliced.cells);

  // The fault model is part of the fingerprint: a lossless checkpoint can
  // never resume a lossy campaign...
  CampaignSpec off = spec;
  off.faults = "";
  EXPECT_NE(oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), spec),
            oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), off));
  // ...but equal fault models fingerprint equally regardless of spelling
  // (the canonical string is hashed, not the raw flag).
  CampaignSpec respelled = spec;
  respelled.faults = "policy_drop:0.05,act_drop:0.05,meas_delay:1,hold,meas_drop:0.1";
  EXPECT_EQ(oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), spec),
            oic::mc::spec_fingerprint(ScenarioRegistry::builtin(), respelled));
}

TEST(Campaign, CheckpointWriteFailuresThrowAndPreserveThePreviousFile) {
  const std::string dir = scratch_dir() + "/ckfail";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Checkpoint ck;
  ck.fingerprint = 7;
  CellStats cell;
  cell.plant = "toy2d";
  cell.family = "bursts";
  cell.baseline.name = "always-run";
  cell.baseline.cost.add(1.0);
  cell.baseline.episodes = 1;
  ck.cells.push_back(cell);

  // An unwritable destination (nonexistent directory) fails loudly, and
  // leaves no temp file behind.
  EXPECT_THROW(oic::mc::save_checkpoint_file(ck, dir + "/no-such-dir/x.ck"),
               oic::NumericalError);

  // A failed write must leave the previous checkpoint intact.  Blocking
  // the temp path with a directory forces the open to fail even when the
  // test runs with root privileges (chmod would be bypassed).
  const std::string path = dir + "/progress.ck";
  oic::mc::save_checkpoint_file(ck, path);
  std::filesystem::create_directories(path + ".tmp");
  Checkpoint bigger = ck;
  bigger.cells[0].baseline.cost.add(2.0);
  EXPECT_THROW(oic::mc::save_checkpoint_file(bigger, path), oic::NumericalError);
  const Checkpoint survived = oic::mc::load_checkpoint_file(path);
  EXPECT_EQ(survived.cells[0].baseline.cost.count(), 1u);
  std::filesystem::remove_all(path + ".tmp");

  // A failed rename (destination blocked by a directory) throws and
  // removes its temp file.
  const std::string blocked = dir + "/blocked.ck";
  std::filesystem::create_directories(blocked);
  EXPECT_THROW(oic::mc::save_checkpoint_file(ck, blocked), oic::NumericalError);
  EXPECT_FALSE(std::filesystem::exists(blocked + ".tmp"));

  std::filesystem::remove_all(dir);
}

TEST(Campaign, RejectsUnknownIdsAndEmptyGrids) {
  CampaignSpec spec = small_spec();
  spec.plants = {"warp-drive"};
  EXPECT_THROW(run_campaign(ScenarioRegistry::builtin(), spec),
               oic::PreconditionError);
  spec = small_spec();
  spec.families = {"nope"};
  EXPECT_THROW(run_campaign(ScenarioRegistry::builtin(), spec),
               oic::PreconditionError);
  spec = small_spec();
  spec.policies = {"bogus"};
  EXPECT_THROW(run_campaign(ScenarioRegistry::builtin(), spec),
               oic::PreconditionError);
  spec = small_spec();
  spec.episodes = 0;
  EXPECT_THROW(run_campaign(ScenarioRegistry::builtin(), spec),
               oic::PreconditionError);
}

TEST(Campaign, JsonDocumentCarriesTheStatsBlocks) {
  CampaignSpec spec = small_spec();
  spec.episodes = 10;
  spec.families = {"mixed"};
  const CampaignResult result = run_campaign(ScenarioRegistry::builtin(), spec);
  const std::string doc = oic::mc::campaign_json(spec, result);
  for (const char* needle :
       {"\"bench\": \"oic_mc\"", "\"meta\"", "\"campaign\"", "\"episodes_per_s\"",
        "\"violation_ci95\"", "\"saving\"", "\"ci95\"", "\"skipped\"",
        "\"safety_violations\": false"}) {
    EXPECT_NE(doc.find(needle), std::string::npos) << needle;
  }
  // CI bounds must be emitted as a two-element array with hi >= lo > -1.
  EXPECT_NE(doc.find("\"violation_ci95\": [0, "), std::string::npos);
}

}  // namespace
