// Adversarial parser tests for the two text formats that cross trust
// boundaries: safety certificates (`oic-cert v1`, cert/io +
// cert/certificate) and serialized agents (`oic-agent v1` / `oic-mlp v1`,
// rl/serialize).  Both are loaded from user-supplied paths (--cert-dir,
// --policies drl:<path>), so a corrupted, truncated, or hostile file must
// reject with a clean oic::Error -- never crash, hang, or allocate
// unboundedly.  The whole suite runs under the CI Sanitize matrix leg, so
// any UB a mutation provokes fails the ASan/UBSan job even when the parse
// "succeeds".
//
// Beyond test_cert's example-based rejection cases, this fuzz-style
// corpus sweeps: systematic truncations at many offsets, NaN/Inf and
// overflow numeric fields, duplicated sections, and oversized dimension
// headers (the allocation bombs).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cert/certificate.hpp"
#include "cert/io.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "eval/registry.hpp"
#include "rl/serialize.hpp"

namespace {

using oic::Rng;

// ---------------------------------------------------------------- corpus

/// One valid certificate document (cheapest registry plant, synthesized
/// once per binary).
const std::string& cert_doc() {
  static const std::string doc = [] {
    const auto model = oic::eval::ScenarioRegistry::builtin().make_model("toy2d");
    const auto cert = oic::cert::synthesize(model);
    std::stringstream ss;
    oic::cert::save_certificate(cert, ss);
    return ss.str();
  }();
  return doc;
}

/// One valid agent document (tiny network, deterministic weights).
const std::string& agent_doc() {
  static const std::string doc = [] {
    Rng rng(11);
    oic::linalg::Vector scale(6);
    for (std::size_t i = 0; i < 6; ++i) scale[i] = 0.5 + 0.1 * i;
    oic::rl::AgentSnapshot snap{"acc", 2, std::move(scale),
                                oic::rl::Mlp({6, 8, 2}, rng)};
    std::stringstream ss;
    oic::rl::save_agent(snap, ss);
    return ss.str();
  }();
  return doc;
}

void expect_cert_rejects(const std::string& text, const std::string& why) {
  std::stringstream ss(text);
  EXPECT_THROW(oic::cert::load_certificate(ss), oic::Error) << why;
}

void expect_agent_rejects(const std::string& text, const std::string& why) {
  std::stringstream ss(text);
  EXPECT_THROW(oic::rl::load_agent(ss), oic::Error) << why;
}

/// Replace whitespace-separated token `index` with `repl`; returns the
/// mutated document (or the original when there are fewer tokens).
std::string replace_token(const std::string& doc, std::size_t index,
                          const std::string& repl) {
  std::size_t pos = 0, seen = 0;
  while (pos < doc.size()) {
    while (pos < doc.size() && std::isspace(static_cast<unsigned char>(doc[pos]))) {
      ++pos;
    }
    if (pos >= doc.size()) break;
    std::size_t end = pos;
    while (end < doc.size() && !std::isspace(static_cast<unsigned char>(doc[end]))) {
      ++end;
    }
    if (seen == index) return doc.substr(0, pos) + repl + doc.substr(end);
    ++seen;
    pos = end;
  }
  return doc;
}

bool token_is_number(const std::string& doc, std::size_t index) {
  std::istringstream ss(replace_token(doc, index, "SENTINEL"));
  // Cheap trick: find the original token by re-tokenizing the document.
  std::istringstream orig(doc);
  std::string tok;
  for (std::size_t i = 0; i <= index; ++i) {
    if (!(orig >> tok)) return false;
  }
  std::istringstream num(tok);
  double v = 0.0;
  return static_cast<bool>(num >> v);
}

// ------------------------------------------------------- certificates

TEST(CertFuzz, ValidDocumentParses) {
  std::stringstream ss(cert_doc());
  EXPECT_NO_THROW(oic::cert::load_certificate(ss));
}

TEST(CertFuzz, EveryTruncationRejects) {
  const std::string& doc = cert_doc();
  // Any cut that loses part of the end sentinel (or anything before it)
  // must reject; cuts beyond it only strip trailing whitespace, which is
  // a complete document.  Stride through the body plus every byte of the
  // tail (the last payload rows and the sentinel itself).
  const std::size_t sentinel_end = doc.rfind("end") + 3;
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < sentinel_end; n += 13) cuts.push_back(n);
  for (std::size_t n = sentinel_end > 64 ? sentinel_end - 64 : 0; n < sentinel_end;
       ++n) {
    cuts.push_back(n);
  }
  for (const std::size_t n : cuts) {
    expect_cert_rejects(doc.substr(0, n),
                        "truncation at byte " + std::to_string(n));
  }
}

TEST(CertFuzz, NonFiniteAndOverflowFieldsReject) {
  const std::string& doc = cert_doc();
  // Mutate numeric tokens spread across the document (header counts are
  // skipped by the is-number check only when non-numeric; counts mutated
  // to nan also must reject).
  for (std::size_t index = 3; index < 400; index += 19) {
    if (!token_is_number(doc, index)) continue;
    for (const char* bad : {"nan", "inf", "-inf", "1e999", "0x1p9999", "bogus"}) {
      expect_cert_rejects(replace_token(doc, index, bad),
                          std::string("token ") + std::to_string(index) + " -> " +
                              bad);
    }
  }
}

TEST(CertFuzz, DuplicatedSectionsReject) {
  const std::string& doc = cert_doc();
  // Duplicate each of the first few lines in place: the reader expects a
  // fixed tag sequence, so a repeated section must derail it.
  std::istringstream ss(doc);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(ss, line)) lines.push_back(line);
  ASSERT_GT(lines.size(), 6u);
  for (std::size_t dup = 1; dup < std::min<std::size_t>(lines.size() - 1, 8); ++dup) {
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      mutated += lines[i];
      mutated += '\n';
      if (i == dup) {
        mutated += lines[dup];
        mutated += '\n';
      }
    }
    expect_cert_rejects(mutated, "duplicated line " + std::to_string(dup));
  }
  // Splicing a stray well-formed object mid-document also rejects.
  std::string spliced = lines[0] + "\n" + lines[1] + "\n" + "vector 1 0\n";
  for (std::size_t i = 2; i < lines.size(); ++i) spliced += lines[i] + "\n";
  expect_cert_rejects(spliced, "spliced stray vector");
}

TEST(CertFuzz, OversizedDimensionHeadersRejectWithoutAllocating) {
  // Direct io-layer probes: the count cap must fire before any payload
  // allocation (a failure here under ASan would be an OOM/timeout).
  for (const char* text : {
           "vector 99999999 0",
           "matrix 99999999 99999999 0",
           "matrix 4097 4097 0",
           "polytope 99999999 99999999 0",
           "polytope 5000 5000 0",
       }) {
    std::stringstream ss(text);
    const std::string what(text);
    if (what.rfind("vector", 0) == 0) {
      EXPECT_THROW(oic::cert::read_vector(ss), oic::Error) << text;
    } else if (what.rfind("matrix", 0) == 0) {
      EXPECT_THROW(oic::cert::read_matrix(ss), oic::Error) << text;
    } else {
      EXPECT_THROW(oic::cert::read_polytope(ss), oic::Error) << text;
    }
  }
}

// ------------------------------------------------------------- agents

TEST(AgentFuzz, ValidDocumentParses) {
  std::stringstream ss(agent_doc());
  EXPECT_NO_THROW(oic::rl::load_agent(ss));
}

TEST(AgentFuzz, EveryTruncationRejects) {
  const std::string& doc = agent_doc();
  // The embedded oic-mlp document ends with its own sentinel (added for
  // exactly this property); everything up to its last byte must reject.
  const std::size_t sentinel_end = doc.rfind("end") + 3;
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < sentinel_end; n += 11) cuts.push_back(n);
  for (std::size_t n = sentinel_end > 64 ? sentinel_end - 64 : 0; n < sentinel_end;
       ++n) {
    cuts.push_back(n);
  }
  for (const std::size_t n : cuts) {
    expect_agent_rejects(doc.substr(0, n),
                         "truncation at byte " + std::to_string(n));
  }
}

TEST(AgentFuzz, NonFiniteFieldsReject) {
  const std::string& doc = agent_doc();
  for (std::size_t index = 4; index < 120; index += 7) {
    if (!token_is_number(doc, index)) continue;
    for (const char* bad : {"nan", "inf", "-inf", "1e999", "junk"}) {
      expect_agent_rejects(replace_token(doc, index, bad),
                           std::string("token ") + std::to_string(index) + " -> " +
                               bad);
    }
  }
}

TEST(AgentFuzz, HeaderAbuseRejects) {
  const std::string& doc = agent_doc();
  // Duplicated header sections.
  expect_agent_rejects("oic-agent v1\nplant: acc\nplant: acc\n" +
                           doc.substr(doc.find("memory:")),
                       "duplicated plant line");
  expect_agent_rejects("oic-agent v1\nplant: acc\nmemory: 2\nmemory: 2\n" +
                           doc.substr(doc.find("scale:")),
                       "duplicated memory line");
  // Memory bounds.
  for (const char* mem : {"0", "999999999", "-3", "nan"}) {
    const std::size_t at = doc.find("memory: 2");
    ASSERT_NE(at, std::string::npos);
    expect_agent_rejects(doc.substr(0, at) + "memory: " + mem +
                             doc.substr(at + std::string("memory: 2").size()),
                         std::string("memory -> ") + mem);
  }
  // Scale corruption: a non-numeric token inside the scale line.
  const std::size_t at = doc.find("scale: ");
  ASSERT_NE(at, std::string::npos);
  expect_agent_rejects(doc.substr(0, at) + "scale: 0.5 nan 0.7" +
                           doc.substr(doc.find('\n', at)),
                       "nan inside scale");
}

TEST(AgentFuzz, OversizedNetworkShapesReject) {
  const std::string tail = "\n0.0\n";  // whatever follows, the header must throw
  for (const char* sizes : {"sizes: 99999 99999", "sizes: 0 4", "sizes: 4",
                            "sizes: 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 "
                            "4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 "
                            "4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4"}) {
    std::stringstream ss(std::string("oic-mlp v1\n") + sizes + tail);
    EXPECT_THROW(oic::rl::load_mlp(ss), oic::Error) << sizes;
  }
}

}  // namespace
