// Adversarial parser tests for the text formats that cross trust
// boundaries: safety certificates (`oic-cert v1`, cert/io +
// cert/certificate), serialized agents (`oic-agent v1` / `oic-mlp v1`,
// rl/serialize), and the campaign checkpoint's splitting section
// (`oic-mc-checkpoint v2`, mc/campaign) plus the `--levels` ladder
// grammar (mc/splitting).  All are loaded from user-supplied paths
// (--cert-dir, --policies drl:<path>, --checkpoint) or flags, so a
// corrupted, truncated, or hostile input must reject with a clean
// oic::Error -- never crash, hang, or allocate unboundedly.  The whole
// suite runs under the CI Sanitize matrix leg, so any UB a mutation
// provokes fails the ASan/UBSan job even when the parse "succeeds".
//
// Beyond test_cert's example-based rejection cases, this fuzz-style
// corpus sweeps: systematic truncations at many offsets, NaN/Inf and
// overflow numeric fields, duplicated sections, and oversized dimension
// headers (the allocation bombs).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cert/certificate.hpp"
#include "cert/io.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "eval/registry.hpp"
#include "mc/campaign.hpp"
#include "mc/splitting.hpp"
#include "rl/serialize.hpp"

namespace {

using oic::Rng;

// ---------------------------------------------------------------- corpus

/// One valid certificate document (cheapest registry plant, synthesized
/// once per binary).
const std::string& cert_doc() {
  static const std::string doc = [] {
    const auto model = oic::eval::ScenarioRegistry::builtin().make_model("toy2d");
    const auto cert = oic::cert::synthesize(model);
    std::stringstream ss;
    oic::cert::save_certificate(cert, ss);
    return ss.str();
  }();
  return doc;
}

/// One valid agent document (tiny network, deterministic weights).
const std::string& agent_doc() {
  static const std::string doc = [] {
    Rng rng(11);
    oic::linalg::Vector scale(6);
    for (std::size_t i = 0; i < 6; ++i) scale[i] = 0.5 + 0.1 * i;
    oic::rl::AgentSnapshot snap{"acc", 2, std::move(scale),
                                oic::rl::Mlp({6, 8, 2}, rng)};
    std::stringstream ss;
    oic::rl::save_agent(snap, ss);
    return ss.str();
  }();
  return doc;
}

void expect_cert_rejects(const std::string& text, const std::string& why) {
  std::stringstream ss(text);
  EXPECT_THROW(oic::cert::load_certificate(ss), oic::Error) << why;
}

void expect_agent_rejects(const std::string& text, const std::string& why) {
  std::stringstream ss(text);
  EXPECT_THROW(oic::rl::load_agent(ss), oic::Error) << why;
}

/// Replace whitespace-separated token `index` with `repl`; returns the
/// mutated document (or the original when there are fewer tokens).
std::string replace_token(const std::string& doc, std::size_t index,
                          const std::string& repl) {
  std::size_t pos = 0, seen = 0;
  while (pos < doc.size()) {
    while (pos < doc.size() && std::isspace(static_cast<unsigned char>(doc[pos]))) {
      ++pos;
    }
    if (pos >= doc.size()) break;
    std::size_t end = pos;
    while (end < doc.size() && !std::isspace(static_cast<unsigned char>(doc[end]))) {
      ++end;
    }
    if (seen == index) return doc.substr(0, pos) + repl + doc.substr(end);
    ++seen;
    pos = end;
  }
  return doc;
}

bool token_is_number(const std::string& doc, std::size_t index) {
  std::istringstream ss(replace_token(doc, index, "SENTINEL"));
  // Cheap trick: find the original token by re-tokenizing the document.
  std::istringstream orig(doc);
  std::string tok;
  for (std::size_t i = 0; i <= index; ++i) {
    if (!(orig >> tok)) return false;
  }
  std::istringstream num(tok);
  double v = 0.0;
  return static_cast<bool>(num >> v);
}

// ------------------------------------------------------- certificates

TEST(CertFuzz, ValidDocumentParses) {
  std::stringstream ss(cert_doc());
  EXPECT_NO_THROW(oic::cert::load_certificate(ss));
}

TEST(CertFuzz, EveryTruncationRejects) {
  const std::string& doc = cert_doc();
  // Any cut that loses part of the end sentinel (or anything before it)
  // must reject; cuts beyond it only strip trailing whitespace, which is
  // a complete document.  Stride through the body plus every byte of the
  // tail (the last payload rows and the sentinel itself).
  const std::size_t sentinel_end = doc.rfind("end") + 3;
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < sentinel_end; n += 13) cuts.push_back(n);
  for (std::size_t n = sentinel_end > 64 ? sentinel_end - 64 : 0; n < sentinel_end;
       ++n) {
    cuts.push_back(n);
  }
  for (const std::size_t n : cuts) {
    expect_cert_rejects(doc.substr(0, n),
                        "truncation at byte " + std::to_string(n));
  }
}

TEST(CertFuzz, NonFiniteAndOverflowFieldsReject) {
  const std::string& doc = cert_doc();
  // Mutate numeric tokens spread across the document (header counts are
  // skipped by the is-number check only when non-numeric; counts mutated
  // to nan also must reject).
  for (std::size_t index = 3; index < 400; index += 19) {
    if (!token_is_number(doc, index)) continue;
    for (const char* bad : {"nan", "inf", "-inf", "1e999", "0x1p9999", "bogus"}) {
      expect_cert_rejects(replace_token(doc, index, bad),
                          std::string("token ") + std::to_string(index) + " -> " +
                              bad);
    }
  }
}

TEST(CertFuzz, DuplicatedSectionsReject) {
  const std::string& doc = cert_doc();
  // Duplicate each of the first few lines in place: the reader expects a
  // fixed tag sequence, so a repeated section must derail it.
  std::istringstream ss(doc);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(ss, line)) lines.push_back(line);
  ASSERT_GT(lines.size(), 6u);
  for (std::size_t dup = 1; dup < std::min<std::size_t>(lines.size() - 1, 8); ++dup) {
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      mutated += lines[i];
      mutated += '\n';
      if (i == dup) {
        mutated += lines[dup];
        mutated += '\n';
      }
    }
    expect_cert_rejects(mutated, "duplicated line " + std::to_string(dup));
  }
  // Splicing a stray well-formed object mid-document also rejects.
  std::string spliced = lines[0] + "\n" + lines[1] + "\n" + "vector 1 0\n";
  for (std::size_t i = 2; i < lines.size(); ++i) spliced += lines[i] + "\n";
  expect_cert_rejects(spliced, "spliced stray vector");
}

TEST(CertFuzz, OversizedDimensionHeadersRejectWithoutAllocating) {
  // Direct io-layer probes: the count cap must fire before any payload
  // allocation (a failure here under ASan would be an OOM/timeout).
  for (const char* text : {
           "vector 99999999 0",
           "matrix 99999999 99999999 0",
           "matrix 4097 4097 0",
           "polytope 99999999 99999999 0",
           "polytope 5000 5000 0",
       }) {
    std::stringstream ss(text);
    const std::string what(text);
    if (what.rfind("vector", 0) == 0) {
      EXPECT_THROW(oic::cert::read_vector(ss), oic::Error) << text;
    } else if (what.rfind("matrix", 0) == 0) {
      EXPECT_THROW(oic::cert::read_matrix(ss), oic::Error) << text;
    } else {
      EXPECT_THROW(oic::cert::read_polytope(ss), oic::Error) << text;
    }
  }
}

// ------------------------------------------------------------- agents

TEST(AgentFuzz, ValidDocumentParses) {
  std::stringstream ss(agent_doc());
  EXPECT_NO_THROW(oic::rl::load_agent(ss));
}

TEST(AgentFuzz, EveryTruncationRejects) {
  const std::string& doc = agent_doc();
  // The embedded oic-mlp document ends with its own sentinel (added for
  // exactly this property); everything up to its last byte must reject.
  const std::size_t sentinel_end = doc.rfind("end") + 3;
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < sentinel_end; n += 11) cuts.push_back(n);
  for (std::size_t n = sentinel_end > 64 ? sentinel_end - 64 : 0; n < sentinel_end;
       ++n) {
    cuts.push_back(n);
  }
  for (const std::size_t n : cuts) {
    expect_agent_rejects(doc.substr(0, n),
                         "truncation at byte " + std::to_string(n));
  }
}

TEST(AgentFuzz, NonFiniteFieldsReject) {
  const std::string& doc = agent_doc();
  for (std::size_t index = 4; index < 120; index += 7) {
    if (!token_is_number(doc, index)) continue;
    for (const char* bad : {"nan", "inf", "-inf", "1e999", "junk"}) {
      expect_agent_rejects(replace_token(doc, index, bad),
                           std::string("token ") + std::to_string(index) + " -> " +
                               bad);
    }
  }
}

TEST(AgentFuzz, HeaderAbuseRejects) {
  const std::string& doc = agent_doc();
  // Duplicated header sections.
  expect_agent_rejects("oic-agent v1\nplant: acc\nplant: acc\n" +
                           doc.substr(doc.find("memory:")),
                       "duplicated plant line");
  expect_agent_rejects("oic-agent v1\nplant: acc\nmemory: 2\nmemory: 2\n" +
                           doc.substr(doc.find("scale:")),
                       "duplicated memory line");
  // Memory bounds.
  for (const char* mem : {"0", "999999999", "-3", "nan"}) {
    const std::size_t at = doc.find("memory: 2");
    ASSERT_NE(at, std::string::npos);
    expect_agent_rejects(doc.substr(0, at) + "memory: " + mem +
                             doc.substr(at + std::string("memory: 2").size()),
                         std::string("memory -> ") + mem);
  }
  // Scale corruption: a non-numeric token inside the scale line.
  const std::size_t at = doc.find("scale: ");
  ASSERT_NE(at, std::string::npos);
  expect_agent_rejects(doc.substr(0, at) + "scale: 0.5 nan 0.7" +
                           doc.substr(doc.find('\n', at)),
                       "nan inside scale");
}

TEST(AgentFuzz, OversizedNetworkShapesReject) {
  const std::string tail = "\n0.0\n";  // whatever follows, the header must throw
  for (const char* sizes : {"sizes: 99999 99999", "sizes: 0 4", "sizes: 4",
                            "sizes: 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 "
                            "4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 "
                            "4 4 4 4 4 4 4 4 4 4 4 4 4 4 4 4"}) {
    std::stringstream ss(std::string("oic-mlp v1\n") + sizes + tail);
    EXPECT_THROW(oic::rl::load_mlp(ss), oic::Error) << sizes;
  }
}

// --------------------------------------------- splitting checkpoints

/// A checkpoint with a splitting section mid-progress: one unfinished
/// batch carrying a frontier (stage, frontier, and lin lines all present)
/// and one finished batch -- hand-built from power-of-two levels so the
/// serialized text is byte-stable and string mutations can target exact
/// lines.
const std::string& split_ck_doc() {
  static const std::string doc = [] {
    oic::mc::Checkpoint ck;
    ck.fingerprint = 11259375;
    oic::mc::SplitCellResult cell;
    cell.plant = "rare1d";
    cell.family = "analytic";
    cell.seeded_levels = {-0.5, -0.25};
    oic::mc::SplitUnitResult unit;
    unit.policy = "analytic";
    oic::mc::SplitBatch live;
    live.estimate.trials = 4;
    live.estimate.episodes = 8;
    live.estimate.levels = {-0.75, -0.5};
    live.estimate.survivors = {3, 2};
    live.frontier = {{{0, 11}}, {{0, 12}, {2, 13}}, {{0, 14}}, {{0, 15}}};
    oic::mc::SplitBatch finished;
    finished.estimate.trials = 4;
    finished.estimate.episodes = 12;
    finished.estimate.levels = {-0.75, -0.5, 0.0};
    finished.estimate.survivors = {3, 2, 1};
    finished.done = true;
    unit.state.batches = {live, finished};
    cell.units.push_back(std::move(unit));
    ck.split_cells.push_back(std::move(cell));
    std::stringstream ss;
    oic::mc::save_checkpoint(ck, ss);
    return ss.str();
  }();
  return doc;
}

/// A checkpoint whose splitting cell carries a falsifier outcome (the
/// falsify and params lines).
const std::string& falsify_ck_doc() {
  static const std::string doc = [] {
    oic::mc::Checkpoint ck;
    ck.fingerprint = 7;
    oic::mc::SplitCellResult cell;
    cell.plant = "toy2d";
    cell.family = "bursts";
    cell.falsified = true;
    cell.falsify.worst_level = -0.5;
    cell.falsify.violation = false;
    cell.falsify.episodes = 100;
    cell.falsify.suggested_levels = {-0.75, -0.5};
    oic::mc::MixtureParams p;
    p.label = "fuzz";
    p.lo = -1.0;
    p.hi = 1.0;
    cell.falsify.worst = p;
    ck.split_cells.push_back(std::move(cell));
    std::stringstream ss;
    oic::mc::save_checkpoint(ck, ss);
    return ss.str();
  }();
  return doc;
}

void expect_ck_rejects(const std::string& text, const std::string& why) {
  std::stringstream ss(text);
  EXPECT_THROW(oic::mc::load_checkpoint(ss), oic::Error) << why;
}

/// Replace the first occurrence of `from` (which must exist) with `to`.
std::string mutate_ck(const std::string& doc, const std::string& from,
                      const std::string& to) {
  const std::size_t at = doc.find(from);
  EXPECT_NE(at, std::string::npos) << from;
  return doc.substr(0, at) + to + doc.substr(at + from.size());
}

TEST(SplitCheckpointFuzz, ValidDocumentsRoundTrip) {
  for (const std::string& doc : {split_ck_doc(), falsify_ck_doc()}) {
    std::stringstream in(doc);
    const oic::mc::Checkpoint ck = oic::mc::load_checkpoint(in);
    std::stringstream out;
    oic::mc::save_checkpoint(ck, out);
    EXPECT_EQ(doc, out.str());  // byte-exact round trip
  }
}

TEST(SplitCheckpointFuzz, EveryTruncationRejects) {
  for (const std::string& doc : {split_ck_doc(), falsify_ck_doc()}) {
    const std::size_t sentinel_end = doc.rfind("end") + 3;
    for (std::size_t n = 0; n < sentinel_end; ++n) {
      expect_ck_rejects(doc.substr(0, n),
                        "truncation at byte " + std::to_string(n));
    }
  }
}

TEST(SplitCheckpointFuzz, NonFiniteAndOverflowFieldsReject) {
  // Every numeric token in the splitting grammar -- flags, counts, levels,
  // survivors, lineage steps and seeds -- must reject the classic hostile
  // replacements.  (A partial integer parse like "1e999" -> 1 derails the
  // tag that follows instead; either way the load throws.)
  for (const std::string& doc : {split_ck_doc(), falsify_ck_doc()}) {
    for (std::size_t index = 2; index < 200; ++index) {
      if (!token_is_number(doc, index)) continue;
      for (const char* bad : {"nan", "inf", "-inf", "1e999", "bogus"}) {
        expect_ck_rejects(replace_token(doc, index, bad),
                          std::string("token ") + std::to_string(index) +
                              " -> " + bad);
      }
    }
  }
}

TEST(SplitCheckpointFuzz, StructuralAbuseRejects) {
  const std::string& doc = split_ck_doc();
  const auto reject = [&](const std::string& from, const std::string& to) {
    expect_ck_rejects(mutate_ck(doc, from, to), from + " -> " + to);
  };
  // Counters breaking their invariants.
  reject("stage -0.75 3", "stage -0.75 9");      // survivors > trials
  reject("stage -0.5 2\nfrontier", "stage 0.5 2\nfrontier");  // level > 0
  reject("stage -0.75 3\nstage -0.5 2\nfrontier",
         "stage -0.5 3\nstage -0.75 2\nfrontier");  // non-monotone ladder
  // Allocation bombs in the size headers.
  reject("splitting 1", "splitting 999999");
  reject("analytic 0 2 -0.5", "analytic 0 99 -0.5");  // oversized seeded ladder
  reject("unit analytic 0 4 2", "unit analytic 0 4 9999");  // batch count
  reject("batch 0 8 2", "batch 0 8 9999");                  // stage count
  reject("lin 2 0 12 2 13", "lin 9999 0 12 2 13");          // lineage entries
  // Frontier / done-flag consistency.
  reject("frontier 4", "frontier 3");        // neither 0 nor the trial count
  reject("unit analytic 0 4 2", "unit analytic 0 0 2");  // batches, 0 trials
  reject("unit analytic 0 4 2", "unit analytic 1 4 2");  // done unit, live batch
  reject("frontier 0", "frontier 4");  // a done batch cannot carry a frontier
  // Malformed lineages.
  reject("lin 2 0 12 2 13", "lin 2 5 12 2 13");  // does not start at step 0
  reject("lin 2 0 12 2 13", "lin 2 0 12 0 13");  // non-increasing steps
}

TEST(SplitCheckpointFuzz, FalsifySectionAbuseRejects) {
  const std::string& doc = falsify_ck_doc();
  const auto reject = [&](const std::string& from, const std::string& to) {
    expect_ck_rejects(mutate_ck(doc, from, to), from + " -> " + to);
  };
  reject("falsify -0.5 0", "falsify -0.5 1");  // flag disagrees with objective
  reject("falsify -0.5 0 100 2", "falsify -0.5 0 100 99");  // oversized ladder
  reject("falsify -0.5 0 100 2 -0.75 -0.5",
         "falsify -0.5 0 100 2 -0.5 -0.75");  // non-monotone suggestion
  // The params line re-runs the full MixtureProfile validation on load.
  reject("params fuzz 0 -1 1", "params fuzz 5 -1 1");   // center outside band
  reject("params fuzz 0 -1 1", "params fuzz 0 1 -1");   // inverted band
  const std::size_t at = doc.find(" 0\nunit");  // trailing sine count
  if (at == std::string::npos) {
    // No units follow a falsify-only cell; the sine count is the last
    // token of the params line.
    reject(" 0\nend", " 99\nend");
  } else {
    reject(" 0\nunit", " 99\nunit");
  }
}

// --------------------------------------------------- level ladders

TEST(SplitLevelsFuzz, HostileLadderStringsReject) {
  for (const char* text :
       {"", ",", "-0.5,,-0.25", "--0.5", "-1e999", "-0.5;-0.25", "-0.5 -0.25",
        "0x1p-1", "-0.25,-0.25", "-0.1,-0.2", "1.0", "-0.5,-0.25,0"}) {
    EXPECT_THROW(oic::mc::parse_levels(text), oic::Error) << "'" << text << "'";
  }
  // 65 strictly increasing negative levels: one past the cap.
  std::string many = "-65";
  for (int i = 64; i >= 1; --i) many += "," + std::to_string(-i);
  EXPECT_THROW(oic::mc::parse_levels(many), oic::Error) << "65 levels";
}

}  // namespace
