// Tests for the plant-generic training layer (src/train): golden parity
// with the pre-lift ACC trainer, serial/parallel grid bit-identity, agent
// serialization round-trips, the drl:<path> policy spec, and end-to-end
// train -> serialize -> evaluate safety on the non-ACC plants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <type_traits>

#include "acc/trainer.hpp"
#include "common/error.hpp"
#include "core/drl_policy.hpp"
#include "core/w_history.hpp"
#include "eval/registry.hpp"
#include "eval/sweep.hpp"
#include "rl/serialize.hpp"
#include "train/grid.hpp"

namespace {

using oic::Rng;
using oic::linalg::Vector;
using oic::eval::ScenarioRegistry;

oic::acc::AccCase& shared_acc() {
  static oic::acc::AccCase acc;
  return acc;
}

/// Trainer configuration small enough for a test but large enough that the
/// DQN actually performs gradient updates.
oic::train::TrainerConfig small_cfg() {
  oic::train::TrainerConfig cfg;
  cfg.episodes = 8;
  cfg.steps_per_episode = 50;
  cfg.seed = 11;
  cfg.dqn.hidden = {16, 16};
  cfg.dqn.min_replay = 100;
  cfg.dqn.batch_size = 16;
  return cfg;
}

bool same_mlp(const oic::rl::Mlp& a, const oic::rl::Mlp& b) {
  if (a.sizes() != b.sizes()) return false;
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    for (std::size_t i = 0; i < a.weight(l).rows(); ++i) {
      for (std::size_t j = 0; j < a.weight(l).cols(); ++j) {
        if (a.weight(l)(i, j) != b.weight(l)(i, j)) return false;
      }
    }
    for (std::size_t i = 0; i < a.bias(l).size(); ++i) {
      if (a.bias(l)[i] != b.bias(l)[i]) return false;
    }
  }
  return true;
}

// ------------------------------------------------------------ golden parity

/// Verbatim replica of the pre-lift acc::train_dqn loop (src/acc/trainer.cpp
/// before the src/train lift), kept here as the golden reference: the
/// ACC-specific calls (fuel_step / delta, w_from_vf) and the per-sample DQN
/// update path the original used.  The generic Trainer must reproduce its
/// agent and log bit for bit.
oic::train::TrainedAgent legacy_acc_train_dqn(oic::acc::AccCase& acc,
                                              const oic::acc::Scenario& scenario,
                                              const oic::train::TrainerConfig& cfg_in,
                                              oic::train::TrainingLog* log) {
  namespace core = oic::core;
  namespace rl = oic::rl;
  oic::train::TrainerConfig cfg = cfg_in;
  cfg.dqn.batched = false;  // the pre-lift code had only the per-sample path

  const std::size_t nx = acc.system().nx();
  const std::size_t state_dim = core::drl_state_dim(nx, nx, cfg.memory);
  const Vector scale = core::drl_state_scale(acc.system(), cfg.memory);

  Rng master(cfg.seed);
  rl::DqnConfig dqn_cfg = cfg.dqn;
  const std::size_t budget = cfg.episodes * cfg.steps_per_episode;
  dqn_cfg.epsilon_decay_steps =
      std::max<std::size_t>(500, std::min(dqn_cfg.epsilon_decay_steps, budget * 6 / 10));
  auto agent = std::make_shared<rl::DoubleDqn>(state_dim, 2, dqn_cfg, master.split());

  const auto& sets = acc.sets();
  const Vector u_skip = acc.u_skip();

  for (std::size_t ep = 0; ep < cfg.episodes; ++ep) {
    Rng ep_rng = master.split();
    acc.rmpc().reset_solver();
    Vector x = acc.sample_x0(ep_rng);
    auto profile = scenario.profile->clone();
    profile->reset(ep_rng.split());

    core::WHistory w_history(cfg.memory);
    double ep_reward = 0.0;
    double ep_energy = 0.0;
    std::size_t ep_skips = 0;

    for (std::size_t t = 0; t < cfg.steps_per_episode; ++t) {
      const Vector s1 = core::apply_state_scale(
          core::build_drl_state(x, w_history, cfg.memory, nx), scale);
      const bool in_xprime = sets.x_prime.contains(x);

      const int desired = agent->select_action(s1);
      const int z = in_xprime ? desired : 1;

      Vector u;
      double kappa_energy = 0.0;
      if (z == 1) {
        u = acc.rmpc().control(x);
        kappa_energy = cfg.energy_mode == oic::train::EnergyMode::kCost
                           ? acc.fuel_step(x, u) / acc.params().delta
                           : acc.energy_raw(u);
      } else {
        u = u_skip;
        ++ep_skips;
      }
      ep_energy += acc.energy_raw(u);

      const double vf = profile->next();
      const Vector w{acc.w_from_vf(vf)};
      const Vector x_next = acc.system().step(x, u, w);

      const Vector ew =
          x_next - acc.system().a() * x - acc.system().b() * u - acc.system().c();
      w_history.push(ew);

      const double reward =
          core::skipping_reward(sets, x, z, x_next, kappa_energy, cfg.w1, cfg.w2);
      ep_reward += reward;

      const Vector s2 = core::apply_state_scale(
          core::build_drl_state(x_next, w_history, cfg.memory, nx), scale);
      rl::Transition tr;
      tr.state = s1;
      tr.action = z;
      tr.reward = reward;
      tr.next_state = s2;
      tr.terminal = false;
      agent->observe(std::move(tr));

      x = x_next;
    }

    if (log != nullptr) {
      log->episode_reward.push_back(ep_reward);
      log->episode_skip_ratio.push_back(static_cast<double>(ep_skips) /
                                        static_cast<double>(cfg.steps_per_episode));
      log->episode_energy.push_back(ep_energy);
    }
  }
  oic::train::TrainedAgent out;
  out.agent = agent;
  out.state_scale = scale;
  out.memory = cfg.memory;
  out.plant = "acc";
  return out;
}

TEST(TrainerGolden, GenericTrainerReproducesPreLiftAccAgentBitwise) {
  auto& acc = shared_acc();
  const auto scen = oic::acc::fig4_scenario(acc.params());
  const auto cfg = small_cfg();

  oic::train::TrainingLog legacy_log;
  const auto legacy = legacy_acc_train_dqn(acc, scen, cfg, &legacy_log);
  ASSERT_GT(legacy.agent->train_steps(), 0u);  // the budget must train

  // The generic trainer runs the batched DQN path (the default); the
  // pre-lift reference ran per-sample.  Bitwise agreement here pins both
  // the plant-genericity lift AND the batched path's exactness at once.
  oic::train::TrainingLog lifted_log;
  const auto lifted = oic::train::train_dqn(acc, scen, cfg, &lifted_log);

  EXPECT_TRUE(same_mlp(legacy.agent->online(), lifted.agent->online()));
  EXPECT_TRUE(same_mlp(legacy.agent->target(), lifted.agent->target()));
  EXPECT_EQ(legacy.agent->train_steps(), lifted.agent->train_steps());
  EXPECT_EQ(legacy_log.episode_reward, lifted_log.episode_reward);
  EXPECT_EQ(legacy_log.episode_skip_ratio, lifted_log.episode_skip_ratio);
  EXPECT_EQ(legacy_log.episode_energy, lifted_log.episode_energy);
  EXPECT_FALSE(lifted_log.left_x);
  for (std::size_t i = 0; i < legacy.state_scale.size(); ++i) {
    EXPECT_EQ(legacy.state_scale[i], lifted.state_scale[i]);
  }
  EXPECT_EQ(lifted.plant, "acc");

  // The historical acc:: spelling is the same code path.
  static_assert(std::is_same_v<oic::acc::TrainedAgent, oic::train::TrainedAgent>);
}

// ---------------------------------------------------------------- grid

TEST(TrainGrid, ParallelBitIdenticalToSerialAtAnyWorkerCount) {
  const auto& reg = ScenarioRegistry::builtin();
  std::vector<oic::train::TrainJob> jobs = {
      {"lane-keep", "sine", 3}, {"lane-keep", "white", 4}, {"lane-keep", "sine", 5}};
  oic::train::TrainerConfig cfg = small_cfg();
  cfg.episodes = 4;
  cfg.steps_per_episode = 30;

  const auto serial = oic::train::train_grid_parallel(reg, jobs, cfg, 1);
  const auto parallel = oic::train::train_grid_parallel(reg, jobs, cfg, 3);
  ASSERT_EQ(serial.results.size(), jobs.size());
  ASSERT_EQ(parallel.results.size(), jobs.size());
  EXPECT_FALSE(serial.safety_violations);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_TRUE(same_mlp(serial.results[j].agent.agent->online(),
                         parallel.results[j].agent.agent->online()))
        << "job " << j;
    EXPECT_EQ(serial.results[j].log.episode_reward,
              parallel.results[j].log.episode_reward)
        << "job " << j;
  }
  // Same-seed same-scenario jobs agree; a different seed trains differently.
  EXPECT_FALSE(same_mlp(serial.results[0].agent.agent->online(),
                        serial.results[2].agent.agent->online()));
}

TEST(TrainGrid, ExpandValidatesAndIntersects) {
  const auto& reg = ScenarioRegistry::builtin();
  oic::train::TrainGridSpec spec;
  // lane-keep, quad-alt, and toy2d list "white"; the ACC does not.
  spec.scenarios = {"white"};
  spec.seeds = {1, 2};
  const auto jobs = oic::train::expand_jobs(reg, spec);
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].plant, "lane-keep");
  EXPECT_EQ(jobs[2].plant, "quad-alt");
  EXPECT_EQ(jobs[4].plant, "toy2d");

  spec.plants = {"acc"};
  EXPECT_THROW(oic::train::expand_jobs(reg, spec), oic::PreconditionError);
  spec.plants = {"submarine"};
  spec.scenarios = {};
  EXPECT_THROW(oic::train::expand_jobs(reg, spec), oic::PreconditionError);

  EXPECT_EQ(oic::train::agent_filename({"lane-keep", "sine", 7}),
            "lane-keep__sine__seed7.agent");
}

// ------------------------------------------------------- serialize + deploy

TEST(AgentSnapshot, RoundTripsThroughFileAndDrlPolicySpec) {
  const auto& reg = ScenarioRegistry::builtin();
  const auto plant = reg.make_plant("lane-keep");
  const auto scen = reg.make_scenario("lane-keep", "sine");
  oic::train::TrainerConfig cfg = small_cfg();
  cfg.episodes = 4;
  cfg.steps_per_episode = 30;
  const auto trained = oic::train::train_dqn(*plant, scen, cfg);

  const std::string path = ::testing::TempDir() + "lane_keep_sine.agent";
  oic::rl::save_agent_file(trained.snapshot(), path);
  const auto snap = oic::rl::load_agent_file(path);
  EXPECT_EQ(snap.plant, "lane-keep");
  EXPECT_EQ(snap.memory, cfg.memory);
  EXPECT_TRUE(same_mlp(snap.net, trained.agent->online()));
  for (std::size_t i = 0; i < snap.state_scale.size(); ++i) {
    EXPECT_EQ(snap.state_scale[i], trained.state_scale[i]);
  }

  // from_snapshot rebuilds a deployable agent with identical decisions.
  const auto rebuilt = oic::train::TrainedAgent::from_snapshot(snap);
  auto policy_a = trained.make_policy();
  auto policy_b = rebuilt.make_policy();
  auto policy_c = oic::eval::make_policy("drl:" + path);
  EXPECT_EQ(policy_c->name(), "drl:" + path);
  Rng rng(5);
  oic::core::WHistory hist(cfg.memory);
  for (int i = 0; i < 50; ++i) {
    Vector x(2);
    x[0] = rng.uniform(-0.5, 0.5);
    x[1] = rng.uniform(-0.5, 0.5);
    Vector w(2);
    w[0] = rng.uniform(-0.2, 0.2);
    w[1] = rng.uniform(-0.2, 0.2);
    hist.push(w);
    const int za = policy_a->decide(x, hist);
    EXPECT_EQ(za, policy_b->decide(x, hist));
    EXPECT_EQ(za, policy_c->decide(x, hist));
  }

  std::remove(path.c_str());
}

TEST(PolicyFactory, DrlSpecRejectsMissingAndMalformed) {
  EXPECT_THROW(oic::eval::make_policy("drl:"), oic::PreconditionError);
  EXPECT_THROW(oic::eval::make_policy("drl:/nonexistent/agent.file"),
               oic::PreconditionError);
}

// --------------------------------------------- end-to-end on the new plants

TEST(TrainEval, TrainedAgentsSweepSafelyWithNonzeroSkipsOnNewPlants) {
  // The acceptance loop: train on a registry plant, serialize, sweep
  // through the oic_eval code path with --policies drl:<path>.  Must be
  // violation-free (Theorem 1) with a nonzero skip ratio on both non-ACC
  // plants.
  const auto& reg = ScenarioRegistry::builtin();
  for (const std::string pid : {"lane-keep", "quad-alt"}) {
    std::vector<oic::train::TrainJob> jobs = {{pid, "sine", 13}};
    oic::train::TrainerConfig cfg = small_cfg();
    cfg.episodes = 6;
    cfg.steps_per_episode = 40;
    const auto grid = oic::train::train_grid_parallel(reg, jobs, cfg, 1);
    ASSERT_FALSE(grid.safety_violations) << pid;

    const std::string path =
        ::testing::TempDir() + oic::train::agent_filename(jobs[0]);
    oic::rl::save_agent_file(grid.results[0].agent.snapshot(), path);

    oic::eval::SweepSpec spec;
    spec.plants = {pid};
    spec.scenarios = {"sine"};
    spec.policies = {"drl:" + path};
    spec.cases = 4;
    spec.steps = 40;
    spec.workers = 2;
    const auto result = oic::eval::run_sweep(reg, spec);
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_FALSE(result.safety_violations) << pid;
    const auto& r = result.cells[0].result;
    ASSERT_EQ(r.policy_names.size(), 1u);
    EXPECT_FALSE(r.any_violation[0]) << pid;
    EXPECT_GT(r.mean_skipped[0], 0.0) << pid;

    // Agents are plant-specific: deploying on any other plant is rejected
    // up front (before any plant is built), even though the state
    // dimensions happen to match across the 2-state plants.
    oic::eval::SweepSpec wrong = spec;
    wrong.plants = {pid == "lane-keep" ? "quad-alt" : "lane-keep"};
    EXPECT_THROW(oic::eval::run_sweep(reg, wrong), oic::PreconditionError) << pid;

    std::remove(path.c_str());
  }
}

}  // namespace
