// Unit and property tests for oic::poly HPolytope primitives.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "poly/hpolytope.hpp"
#include "poly/ops.hpp"
#include "poly/support_sum.hpp"

namespace {

using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

HPolytope unit_square() { return HPolytope::box(Vector{0, 0}, Vector{1, 1}); }

TEST(HPolytope, BoxMembership) {
  const HPolytope p = unit_square();
  EXPECT_TRUE(p.contains(Vector{0.5, 0.5}));
  EXPECT_TRUE(p.contains(Vector{0.0, 1.0}));
  EXPECT_FALSE(p.contains(Vector{1.1, 0.5}));
  EXPECT_FALSE(p.contains(Vector{-0.1, 0.5}));
}

TEST(HPolytope, ViolationSign) {
  const HPolytope p = unit_square();
  EXPECT_LE(p.violation(Vector{0.5, 0.5}), 0.0);
  EXPECT_NEAR(p.violation(Vector{1.5, 0.5}), 0.5, 1e-12);
}

TEST(HPolytope, EmptinessDetection) {
  const HPolytope nonempty = unit_square();
  EXPECT_FALSE(nonempty.is_empty());
  // x <= 0 and x >= 1 simultaneously.
  Matrix a{{1, 0}, {-1, 0}};
  Vector b{0.0, -1.0};
  const HPolytope empty(a, b);
  EXPECT_TRUE(empty.is_empty());
}

TEST(HPolytope, UniverseIsUnboundedAndNonEmpty) {
  const HPolytope u = HPolytope::universe(2);
  EXPECT_FALSE(u.is_empty());
  EXPECT_FALSE(u.is_bounded());
  EXPECT_TRUE(u.contains(Vector{1e9, -1e9}));
}

TEST(HPolytope, SupportOfBox) {
  const HPolytope p = HPolytope::box(Vector{-1, -2}, Vector{3, 4});
  const auto s1 = p.support(Vector{1, 0});
  ASSERT_TRUE(s1.bounded && s1.feasible);
  EXPECT_NEAR(s1.value, 3.0, 1e-9);
  const auto s2 = p.support(Vector{-1, -1});
  EXPECT_NEAR(s2.value, 1.0 + 2.0, 1e-9);
  const auto s3 = p.support(Vector{1, 1});
  EXPECT_NEAR(s3.value, 7.0, 1e-9);
}

TEST(HPolytope, SupportUnboundedDirectionReported) {
  // Half-plane x <= 1: unbounded along +y.
  const HPolytope p(Matrix{{1, 0}}, Vector{1.0});
  EXPECT_TRUE(p.support(Vector{1, 0}).bounded);
  EXPECT_FALSE(p.support(Vector{0, 1}).bounded);
}

TEST(HPolytope, ChebyshevOfSquare) {
  const HPolytope p = unit_square();
  const auto ball = p.chebyshev();
  ASSERT_TRUE(ball.feasible);
  EXPECT_NEAR(ball.radius, 0.5, 1e-8);
  EXPECT_NEAR(ball.center[0], 0.5, 1e-7);
  EXPECT_NEAR(ball.center[1], 0.5, 1e-7);
}

TEST(HPolytope, ChebyshevOfEmptySetInfeasible) {
  const HPolytope empty(Matrix{{1}, {-1}}, Vector{0.0, -1.0});
  EXPECT_FALSE(empty.chebyshev().feasible);
}

TEST(HPolytope, IntersectionShrinks) {
  const HPolytope p = unit_square();
  const HPolytope q = HPolytope::box(Vector{0.5, -1}, Vector{2, 2});
  const HPolytope i = p.intersect(q);
  EXPECT_TRUE(i.contains(Vector{0.75, 0.5}));
  EXPECT_FALSE(i.contains(Vector{0.25, 0.5}));
  EXPECT_TRUE(contains_polytope(p, i));
  EXPECT_TRUE(contains_polytope(q, i));
}

TEST(HPolytope, AffinePreimage) {
  // P = unit square; map x -> 2x. Preimage is the half-size square.
  const HPolytope p = unit_square();
  const Matrix m{{2, 0}, {0, 2}};
  const HPolytope pre = p.affine_preimage(m, Vector{0, 0});
  EXPECT_TRUE(pre.contains(Vector{0.5, 0.5}));
  EXPECT_FALSE(pre.contains(Vector{0.75, 0.25}));
  EXPECT_TRUE(approx_equal(pre, HPolytope::box(Vector{0, 0}, Vector{0.5, 0.5}), 1e-7));
}

TEST(HPolytope, AffinePreimageWithTranslation) {
  // { x | x + t in P }: shifted box.
  const HPolytope p = unit_square();
  const HPolytope pre = p.affine_preimage(Matrix::identity(2), Vector{1.0, 0.0});
  EXPECT_TRUE(approx_equal(pre, HPolytope::box(Vector{-1, 0}, Vector{0, 1}), 1e-7));
}

TEST(HPolytope, AffineImageInvertible) {
  const HPolytope p = unit_square();
  const Matrix rot{{0, -1}, {1, 0}};  // 90 degree rotation
  const HPolytope img = p.affine_image_invertible(rot, Vector{0, 0});
  EXPECT_TRUE(img.contains(Vector{-0.5, 0.5}));
  EXPECT_FALSE(img.contains(Vector{0.5, 0.5}));
}

TEST(HPolytope, AffineImageSingularThrows) {
  const Matrix sing{{1, 0}, {1, 0}};
  EXPECT_THROW(unit_square().affine_image_invertible(sing, Vector{0, 0}),
               oic::NumericalError);
}

TEST(HPolytope, PontryaginDiffOfBoxes) {
  const HPolytope p = HPolytope::box(Vector{-2, -2}, Vector{2, 2});
  const HPolytope w = HPolytope::sym_box(Vector{0.5, 1.0});
  const HPolytope d = p.pontryagin_diff(w);
  EXPECT_TRUE(approx_equal(d, HPolytope::box(Vector{-1.5, -1}, Vector{1.5, 1}), 1e-7));
}

TEST(HPolytope, PontryaginDiffThenSumIsSubset) {
  // (P - W) + W is always a subset of P (equality for boxes).
  const HPolytope p = HPolytope::box(Vector{-2, -1}, Vector{2, 1});
  const HPolytope w = HPolytope::sym_box(Vector{0.3, 0.3});
  const HPolytope d = p.pontryagin_diff(w);
  const HPolytope s = oic::poly::minkowski_sum(d, w);
  EXPECT_TRUE(contains_polytope(p, s, 1e-6));
}

TEST(HPolytope, TranslateMovesSet) {
  const HPolytope p = unit_square().translate(Vector{2, 3});
  EXPECT_TRUE(p.contains(Vector{2.5, 3.5}));
  EXPECT_FALSE(p.contains(Vector{0.5, 0.5}));
}

TEST(HPolytope, ScaleAboutOrigin) {
  const HPolytope p = HPolytope::sym_box(Vector{1, 1}).scale(2.0);
  EXPECT_TRUE(p.contains(Vector{1.5, -1.5}));
  EXPECT_FALSE(p.contains(Vector{2.5, 0}));
}

TEST(HPolytope, RemoveRedundancyDropsImpliedRows) {
  // Unit square plus a slack row x <= 5 (redundant) and a duplicate.
  Matrix a{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 0}, {1, 0}};
  Vector b{1, 0, 1, 0, 5, 1};
  const HPolytope p(a, b);
  const HPolytope r = p.remove_redundancy();
  EXPECT_EQ(r.num_constraints(), 4u);
  EXPECT_TRUE(approx_equal(r, unit_square(), 1e-7));
}

TEST(HPolytope, BoundingBox) {
  const HPolytope p = HPolytope::l1_ball(2, 2.0);
  const auto bb = p.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->first[0], -2.0, 1e-8);
  EXPECT_NEAR(bb->second[1], 2.0, 1e-8);
  EXPECT_FALSE(HPolytope::universe(2).bounding_box().has_value());
}

TEST(HPolytope, Vertices2dOfSquare) {
  const auto verts = unit_square().vertices_2d();
  ASSERT_EQ(verts.size(), 4u);
  // All four corners present.
  auto has = [&](double x, double y) {
    for (const auto& v : verts)
      if (std::fabs(v[0] - x) < 1e-8 && std::fabs(v[1] - y) < 1e-8) return true;
    return false;
  };
  EXPECT_TRUE(has(0, 0));
  EXPECT_TRUE(has(1, 0));
  EXPECT_TRUE(has(1, 1));
  EXPECT_TRUE(has(0, 1));
}

TEST(HPolytope, FromVertices2dRoundTrip) {
  std::vector<Vector> pts = {Vector{0, 0}, Vector{2, 0}, Vector{2, 1},
                             Vector{0, 1}, Vector{1, 0.5}};  // interior point
  const HPolytope p = HPolytope::from_vertices_2d(pts);
  EXPECT_TRUE(approx_equal(p, HPolytope::box(Vector{0, 0}, Vector{2, 1}), 1e-7));
}

TEST(HPolytope, L1BallGeometry) {
  const HPolytope p = HPolytope::l1_ball(2, 1.0);
  EXPECT_TRUE(p.contains(Vector{0.5, 0.5}));
  EXPECT_TRUE(p.contains(Vector{1.0, 0.0}));
  EXPECT_FALSE(p.contains(Vector{0.75, 0.75}));
}

TEST(ContainsPolytope, NestedBoxes) {
  const HPolytope outer = HPolytope::sym_box(Vector{2, 2});
  const HPolytope inner = HPolytope::sym_box(Vector{1, 1});
  EXPECT_TRUE(contains_polytope(outer, inner));
  EXPECT_FALSE(contains_polytope(inner, outer));
  EXPECT_TRUE(contains_polytope(inner, inner));
}

TEST(MinkowskiSum2d, BoxesAdd) {
  const HPolytope a = HPolytope::box(Vector{0, 0}, Vector{1, 1});
  const HPolytope b = HPolytope::sym_box(Vector{0.5, 0.25});
  const HPolytope s = oic::poly::minkowski_sum(a, b);
  EXPECT_TRUE(approx_equal(s, HPolytope::box(Vector{-0.5, -0.25}, Vector{1.5, 1.25}),
                           1e-6));
}

TEST(MinkowskiSum2d, SquarePlusDiamondIsOctagon) {
  const HPolytope sq = HPolytope::sym_box(Vector{1, 1});
  const HPolytope di = HPolytope::l1_ball(2, 1.0);
  const HPolytope s = oic::poly::minkowski_sum(sq, di);
  // Octagon: support along axes = 2, along diagonal = sqrt(2)*... check key pts.
  EXPECT_TRUE(s.contains(Vector{2, 0}));
  EXPECT_TRUE(s.contains(Vector{1.5, 1.5 - 1e-9}));
  EXPECT_FALSE(s.contains(Vector{1.9, 1.9}));
  const auto verts = s.vertices_2d();
  EXPECT_EQ(verts.size(), 8u);
}

TEST(AffineImageProjection, ProjectsToLowerDim) {
  // Project the unit square onto its first coordinate scaled by 3.
  const HPolytope p = unit_square();
  const Matrix m{{3, 0}};
  const HPolytope img = oic::poly::affine_image_projection(p, m, Vector{1.0});
  ASSERT_EQ(img.dim(), 1u);
  const auto bb = img.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->first[0], 1.0, 1e-7);
  EXPECT_NEAR(bb->second[0], 4.0, 1e-7);
}

TEST(SupportSum, MatchesExplicitSum) {
  // W (+) M W for box W must match the explicit Minkowski sum.
  const HPolytope w = HPolytope::sym_box(Vector{1, 0.5});
  const Matrix m{{0.5, 0}, {0, 0.5}};
  oic::poly::SupportSum chain;
  chain.add_term(Matrix::identity(2), w);
  chain.add_term(m, w);
  const HPolytope explicit_sum =
      oic::poly::minkowski_sum(w, w.affine_image_invertible(m, Vector{0, 0}));
  for (const auto& d : oic::poly::uniform_directions_2d(16)) {
    const auto s = explicit_sum.support(d);
    ASSERT_TRUE(s.bounded);
    EXPECT_NEAR(chain.support(d), s.value, 1e-7) << "direction mismatch";
  }
}

TEST(SupportSum, ScaleMultipliesSupport) {
  oic::poly::SupportSum chain;
  chain.add_term(Matrix::identity(2), HPolytope::sym_box(Vector{1, 1}));
  const double h0 = chain.support(Vector{1, 0});
  chain.set_scale(2.5);
  EXPECT_NEAR(chain.support(Vector{1, 0}), 2.5 * h0, 1e-12);
}

TEST(SupportSum, OuterPolytopeContainsChain) {
  oic::poly::SupportSum chain;
  chain.add_term(Matrix::identity(2), HPolytope::l1_ball(2, 1.0));
  chain.add_term(Matrix{{0.3, 0.1}, {-0.1, 0.3}}, HPolytope::sym_box(Vector{1, 1}));
  const HPolytope outer = chain.outer_polytope(oic::poly::uniform_directions_2d(12));
  // The outer polytope's support in each template direction equals the chain's.
  for (const auto& d : oic::poly::uniform_directions_2d(12)) {
    const auto s = outer.support(d);
    ASSERT_TRUE(s.bounded);
    EXPECT_GE(s.value + 1e-7, chain.support(d));
  }
}

TEST(Directions, GeneratorsHaveUnitNorm) {
  for (const auto& d : oic::poly::uniform_directions_2d(8)) {
    EXPECT_NEAR(d.norm2(), 1.0, 1e-12);
  }
  for (const auto& d : oic::poly::box_diag_directions(3)) {
    EXPECT_NEAR(d.norm2(), 1.0, 1e-12);
  }
}

// Property: for random 2-D polytopes built from vertex clouds, every
// generating point lies inside the hull polytope, and the Chebyshev center
// is feasible.
class RandomHull2d : public ::testing::TestWithParam<int> {};

TEST_P(RandomHull2d, HullContainsGenerators) {
  oic::Rng rng{static_cast<std::uint64_t>(GetParam() * 31 + 5)};
  std::vector<Vector> pts;
  const int npts = rng.uniform_int(3, 12);
  for (int i = 0; i < npts; ++i)
    pts.push_back(Vector{rng.uniform(-5, 5), rng.uniform(-5, 5)});
  const HPolytope hull = HPolytope::from_vertices_2d(pts);
  for (const auto& p : pts) EXPECT_TRUE(hull.contains(p, 1e-6));
  const auto ball = hull.chebyshev();
  EXPECT_TRUE(ball.feasible);
  if (ball.radius > 1e-9) {
    EXPECT_TRUE(hull.contains(ball.center, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHull2d, ::testing::Range(0, 30));

// Property: Minkowski sum via the 2-D fast path agrees with support-function
// addition: h_{P+Q}(d) = h_P(d) + h_Q(d) in every direction.
class MinkowskiSupportProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinkowskiSupportProperty, SupportAdds) {
  oic::Rng rng{static_cast<std::uint64_t>(GetParam() * 131 + 17)};
  auto random_poly = [&]() {
    std::vector<Vector> pts;
    const int npts = rng.uniform_int(3, 8);
    for (int i = 0; i < npts; ++i)
      pts.push_back(Vector{rng.uniform(-3, 3), rng.uniform(-3, 3)});
    return HPolytope::from_vertices_2d(pts);
  };
  const HPolytope p = random_poly();
  const HPolytope q = random_poly();
  const HPolytope s = oic::poly::minkowski_sum(p, q);
  for (const auto& d : oic::poly::uniform_directions_2d(12)) {
    const auto sp = p.support(d);
    const auto sq = q.support(d);
    const auto ss = s.support(d);
    ASSERT_TRUE(sp.bounded && sq.bounded && ss.bounded);
    EXPECT_NEAR(ss.value, sp.value + sq.value, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinkowskiSupportProperty, ::testing::Range(0, 30));

}  // namespace
