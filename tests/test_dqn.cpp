// End-to-end tests of the double-DQN agent on tiny synthetic MDPs.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "rl/dqn.hpp"

namespace {

using oic::Rng;
using oic::linalg::Vector;
using oic::rl::DoubleDqn;
using oic::rl::DqnConfig;
using oic::rl::Transition;

DqnConfig small_config() {
  DqnConfig cfg;
  cfg.hidden = {16, 16};
  cfg.learning_rate = 3e-3;
  cfg.gamma = 0.9;
  cfg.batch_size = 16;
  cfg.replay_capacity = 2000;
  cfg.min_replay = 64;
  cfg.target_sync_interval = 100;
  cfg.epsilon_start = 1.0;
  cfg.epsilon_end = 0.05;
  cfg.epsilon_decay_steps = 1500;
  return cfg;
}

TEST(DoubleDqn, ConstructionAndShapes) {
  DoubleDqn agent(3, 2, small_config(), Rng(1));
  const Vector q = agent.q_values(Vector{0.1, 0.2, 0.3});
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(agent.train_steps(), 0u);
}

TEST(DoubleDqn, TargetStartsSyncedToOnline) {
  DoubleDqn agent(2, 2, small_config(), Rng(2));
  const Vector s{0.4, -0.4};
  EXPECT_TRUE(approx_equal(agent.online().forward(s), agent.target().forward(s), 0.0));
}

TEST(DoubleDqn, EpsilonDecaysWithActionSelections) {
  DoubleDqn agent(1, 2, small_config(), Rng(3));
  const double e0 = agent.epsilon();
  for (int i = 0; i < 500; ++i) agent.select_action(Vector{0.0});
  EXPECT_LT(agent.epsilon(), e0);
}

TEST(DoubleDqn, InvalidInputsThrow) {
  DoubleDqn agent(2, 2, small_config(), Rng(4));
  EXPECT_THROW(agent.q_values(Vector{1.0}), oic::PreconditionError);
  Transition t;
  t.state = Vector{0, 0};
  t.next_state = Vector{0, 0};
  t.action = 7;
  EXPECT_THROW(agent.observe(t), oic::PreconditionError);
}

// Contextual bandit: reward = +1 when action matches sign of the state,
// else -1.  The greedy policy must learn the mapping.
TEST(DoubleDqn, LearnsContextualBandit) {
  DqnConfig cfg = small_config();
  cfg.gamma = 0.0;  // bandit: no bootstrapping
  DoubleDqn agent(1, 2, cfg, Rng(5));
  Rng env(17);
  for (int step = 0; step < 4000; ++step) {
    const double s = env.uniform(-1, 1);
    const Vector state{s};
    const int a = agent.select_action(state);
    const int correct = s >= 0 ? 1 : 0;
    Transition t;
    t.state = state;
    t.action = a;
    t.reward = a == correct ? 1.0 : -1.0;
    t.next_state = state;
    t.terminal = true;
    agent.observe(std::move(t));
  }
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const double s = env.uniform(-1, 1);
    if (std::abs(s) < 0.1) continue;  // skip the ambiguous boundary
    const int a = agent.greedy_action(Vector{s});
    correct += (a == (s >= 0 ? 1 : 0)) ? 1 : 0;
  }
  EXPECT_GT(correct, 150);
}

// Two-state chain MDP with known optimal Q: state 0 --action1--> state 1
// (reward 0), state 1 --action1--> terminal reward +1; action 0 loops with
// reward 0.  With gamma = 0.9 the optimal values are Q(0,1) = 0.9,
// Q(1,1) = 1.0.
TEST(DoubleDqn, ChainMdpValuesConverge) {
  DqnConfig cfg = small_config();
  cfg.gamma = 0.9;
  cfg.epsilon_decay_steps = 3000;
  cfg.learning_rate = 2e-3;
  DoubleDqn agent(1, 2, cfg, Rng(7));

  Rng env(23);
  for (int episode = 0; episode < 1200; ++episode) {
    double s = 0.0;
    for (int t = 0; t < 6; ++t) {
      const Vector state{s};
      const int a = agent.select_action(state);
      Transition tr;
      tr.state = state;
      tr.action = a;
      if (a == 0) {
        tr.reward = 0.0;
        tr.next_state = state;
        tr.terminal = false;
        agent.observe(tr);
        continue;
      }
      if (s < 0.5) {
        tr.reward = 0.0;
        tr.next_state = Vector{1.0};
        tr.terminal = false;
        agent.observe(tr);
        s = 1.0;
      } else {
        tr.reward = 1.0;
        tr.next_state = Vector{1.0};
        tr.terminal = true;
        agent.observe(tr);
        break;
      }
    }
  }
  const Vector q0 = agent.q_values(Vector{0.0});
  const Vector q1 = agent.q_values(Vector{1.0});
  EXPECT_NEAR(q1[1], 1.0, 0.15);
  EXPECT_NEAR(q0[1], 0.9, 0.2);
  EXPECT_GT(q0[1], q0[0]);  // advancing beats looping
  EXPECT_GT(q1[1], q1[0]);
}

// The batched minibatch path (SoA buffers + fused batched GEMM) must be
// bit-identical to the per-sample loop it replaces: identical training
// stream in, identical weights and Q-values out.
TEST(DoubleDqn, BatchedUpdatesBitIdenticalToPerSample) {
  auto run = [](bool batched) {
    DqnConfig cfg = small_config();
    cfg.batched = batched;
    DoubleDqn agent(2, 2, cfg, Rng(42));
    Rng env(9);
    for (int i = 0; i < 600; ++i) {
      const Vector s{env.uniform(-1, 1), env.uniform(-1, 1)};
      const int a = agent.select_action(s);
      Transition t;
      t.state = s;
      t.action = a;
      t.reward = env.uniform(-1, 1);
      t.next_state = Vector{env.uniform(-1, 1), env.uniform(-1, 1)};
      t.terminal = env.bernoulli(0.1);
      agent.observe(std::move(t));
    }
    return agent;
  };
  const DoubleDqn a = run(false);
  const DoubleDqn b = run(true);
  ASSERT_GT(a.train_steps(), 0u);
  EXPECT_EQ(a.train_steps(), b.train_steps());
  for (std::size_t l = 0; l < a.online().num_layers(); ++l) {
    for (std::size_t i = 0; i < a.online().weight(l).rows(); ++i) {
      for (std::size_t j = 0; j < a.online().weight(l).cols(); ++j) {
        EXPECT_EQ(a.online().weight(l)(i, j), b.online().weight(l)(i, j))
            << "layer " << l;
      }
    }
    for (std::size_t i = 0; i < a.online().bias(l).size(); ++i) {
      EXPECT_EQ(a.online().bias(l)[i], b.online().bias(l)[i]) << "layer " << l;
    }
  }
  const Vector probe{0.3, -0.7};
  EXPECT_TRUE(approx_equal(a.q_values(probe), b.q_values(probe), 0.0));
}

TEST(DoubleDqn, DeterministicGivenSeeds) {
  auto run = [] {
    DoubleDqn agent(1, 2, small_config(), Rng(42));
    Rng env(1);
    for (int i = 0; i < 500; ++i) {
      const Vector s{env.uniform(-1, 1)};
      const int a = agent.select_action(s);
      Transition t;
      t.state = s;
      t.action = a;
      t.reward = a == 1 ? 0.5 : -0.5;
      t.next_state = s;
      t.terminal = true;
      agent.observe(std::move(t));
    }
    return agent.q_values(Vector{0.3});
  };
  const Vector a = run();
  const Vector b = run();
  EXPECT_TRUE(approx_equal(a, b, 0.0));
}

}  // namespace
