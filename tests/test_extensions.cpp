// Tests for the extension features beyond the paper's core: multi-step
// strengthened safe sets (burst skipping), the weakly-hard (m, K) governor,
// and MLP serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/random.hpp"
#include "control/invariant.hpp"
#include "control/lqr.hpp"
#include "core/intermittent.hpp"
#include "core/policy.hpp"
#include "core/runner.hpp"
#include "core/safe_sets.hpp"
#include "rl/serialize.hpp"

namespace {

using oic::Rng;
using oic::control::AffineLTI;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

struct Rig {
  AffineLTI sys;
  Matrix k;
  HPolytope xi;

  static const Rig& get() {
    static Rig rig = [] {
      const double dt = 0.1;
      Matrix a{{1, dt}, {0, 1}};
      Matrix b{{0.5 * dt * dt}, {dt}};
      AffineLTI sys = AffineLTI::canonical(
          a, b, HPolytope::sym_box(Vector{5, 5}), HPolytope::sym_box(Vector{2}),
          HPolytope::sym_box(Vector{0.04, 0.04}));
      const auto lqr = oic::control::dlqr(sys.a(), sys.b(), Matrix::identity(2),
                                          Matrix{{1.0}});
      const auto inv =
          oic::control::maximal_robust_control_invariant(sys, lqr.k, Vector{0.0});
      return Rig{std::move(sys), lqr.k, inv.set};
    }();
    return rig;
  }
};

TEST(MultiStepSafeSets, ChainIsNested) {
  const Rig& rig = Rig::get();
  const auto chain =
      oic::core::compute_multi_step_safe_sets(rig.sys, rig.xi, Vector{0.0}, 5);
  ASSERT_GE(chain.size(), 2u);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_TRUE(contains_polytope(chain[i - 1], chain[i], 1e-6))
        << "X'_" << i + 1 << " not inside X'_" << i;
  }
  // Every element sits inside XI.
  for (const auto& s : chain) EXPECT_TRUE(contains_polytope(rig.xi, s, 1e-6));
}

TEST(MultiStepSafeSets, FirstElementMatchesDefinition3) {
  const Rig& rig = Rig::get();
  const auto chain =
      oic::core::compute_multi_step_safe_sets(rig.sys, rig.xi, Vector{0.0}, 1);
  ASSERT_EQ(chain.size(), 1u);
  const auto sets = oic::core::compute_safe_sets(rig.sys, rig.xi, Vector{0.0});
  EXPECT_TRUE(approx_equal(chain[0], sets.x_prime, 1e-6));
}

TEST(MultiStepSafeSets, BurstSkippingIsSafe) {
  // From any vertex of X'_k, skipping k times in a row with adversarial
  // vertex disturbances must remain inside XI the whole way.
  const Rig& rig = Rig::get();
  const std::size_t k = 4;
  const auto chain =
      oic::core::compute_multi_step_safe_sets(rig.sys, rig.xi, Vector{0.0}, k);
  if (chain.size() < k) GTEST_SKIP() << "chain collapsed before depth " << k;
  Rng rng(5);
  const auto verts = chain[k - 1].vertices_2d();
  ASSERT_FALSE(verts.empty());
  for (const auto& v0 : verts) {
    for (int trial = 0; trial < 8; ++trial) {
      Vector x = v0;
      for (std::size_t step = 0; step < k; ++step) {
        const Vector w{rng.bernoulli(0.5) ? 0.04 : -0.04,
                       rng.bernoulli(0.5) ? 0.04 : -0.04};
        x = rig.sys.step(x, Vector{0.0}, w);
        EXPECT_TRUE(rig.xi.contains(x, 1e-7))
            << "left XI at burst step " << step << " from vertex";
      }
    }
  }
}

TEST(MultiStepSafeSets, InvalidArgsThrow) {
  const Rig& rig = Rig::get();
  EXPECT_THROW(
      oic::core::compute_multi_step_safe_sets(rig.sys, rig.xi, Vector{0.0}, 0),
      oic::PreconditionError);
}

TEST(WeaklyHard, EnforcesSkipBudget) {
  oic::core::BangBangPolicy skip_always;
  oic::core::WeaklyHardPolicy gov(skip_always, 2, 4);  // at most 2 skips per 4
  const Vector x{0, 0};
  std::vector<int> zs;
  for (int i = 0; i < 20; ++i) zs.push_back(gov.decide(x, {}));
  // Every window of 4 consecutive decisions has at most 2 zeros.
  for (std::size_t i = 0; i + 4 <= zs.size(); ++i) {
    int skips = 0;
    for (std::size_t j = i; j < i + 4; ++j) skips += zs[j] == 0 ? 1 : 0;
    EXPECT_LE(skips, 2) << "window at " << i;
  }
  // And the budget is actually used (not trivially all-run).
  int total_skips = 0;
  for (int z : zs) total_skips += z == 0 ? 1 : 0;
  EXPECT_GE(total_skips, 8);
}

TEST(WeaklyHard, PassThroughWhenInnerRuns) {
  oic::core::AlwaysRunPolicy run;
  oic::core::WeaklyHardPolicy gov(run, 1, 3);
  const Vector x{0, 0};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(gov.decide(x, {}), 1);
  EXPECT_EQ(gov.skips_in_window(), 0u);
}

TEST(WeaklyHard, ResetClearsWindow) {
  oic::core::BangBangPolicy skip_always;
  oic::core::WeaklyHardPolicy gov(skip_always, 1, 4);
  const Vector x{0, 0};
  EXPECT_EQ(gov.decide(x, {}), 0);
  EXPECT_EQ(gov.decide(x, {}), 1);  // budget spent
  gov.reset();
  EXPECT_EQ(gov.decide(x, {}), 0);  // fresh window
}

TEST(WeaklyHard, NoteForcedRunCountsTowardWindow) {
  oic::core::BangBangPolicy skip_always;
  oic::core::WeaklyHardPolicy gov(skip_always, 1, 2);
  const Vector x{0, 0};
  EXPECT_EQ(gov.decide(x, {}), 0);
  gov.note_forced_run();
  // Window now holds {0, 1}: one skip used, so next decide is blocked.
  EXPECT_EQ(gov.decide(x, {}), 1);
}

TEST(WeaklyHard, InvalidConfigThrows) {
  oic::core::BangBangPolicy p;
  EXPECT_THROW(oic::core::WeaklyHardPolicy(p, 3, 2), oic::PreconditionError);
  EXPECT_THROW(oic::core::WeaklyHardPolicy(p, 0, 0), oic::PreconditionError);
}

TEST(WeaklyHard, SafeUnderTheMonitor) {
  // The governor composes with Algorithm 1 without breaking Theorem 1.
  const Rig& rig = Rig::get();
  const auto sets = oic::core::compute_safe_sets(rig.sys, rig.xi, Vector{0.0});
  oic::control::LinearFeedback kappa(rig.k);
  oic::core::BangBangPolicy inner;
  oic::core::WeaklyHardPolicy gov(inner, 3, 5);
  oic::core::IntermittentConfig cfg;
  cfg.u_skip = Vector{0.0};
  oic::core::IntermittentController ic(rig.sys, sets, kappa, gov, cfg);
  Rng rng(11);
  oic::core::RunConfig rcfg;
  rcfg.steps = 150;
  const auto rr = oic::core::run_closed_loop(
      rig.sys, ic, Vector{0.2, 0.1},
      [&](std::size_t) {
        return Vector{rng.uniform(-0.04, 0.04), rng.uniform(-0.04, 0.04)};
      },
      rcfg);
  EXPECT_FALSE(rr.left_xi);
  EXPECT_GT(rr.trace.skipped_steps(), 30u);
  EXPECT_LT(rr.trace.skip_ratio(), 0.7);  // the (3,5) budget caps skipping
}

TEST(Serialize, RoundTripPreservesOutputs) {
  Rng rng(9);
  oic::rl::Mlp net({3, 16, 8, 2}, rng);
  std::stringstream ss;
  oic::rl::save_mlp(net, ss);
  const oic::rl::Mlp loaded = oic::rl::load_mlp(ss);
  Rng probe(10);
  for (int i = 0; i < 20; ++i) {
    const Vector in{probe.uniform(-2, 2), probe.uniform(-2, 2), probe.uniform(-2, 2)};
    EXPECT_TRUE(approx_equal(net.forward(in), loaded.forward(in), 1e-15));
  }
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(13);
  oic::rl::Mlp net({2, 4, 2}, rng);
  const std::string path = "/tmp/oic_test_mlp.txt";
  oic::rl::save_mlp_file(net, path);
  const oic::rl::Mlp loaded = oic::rl::load_mlp_file(path);
  EXPECT_TRUE(approx_equal(net.forward(Vector{0.3, -0.4}),
                           loaded.forward(Vector{0.3, -0.4}), 1e-15));
}

TEST(Serialize, MalformedInputRejected) {
  std::stringstream bad1("not-a-model v1\n");
  EXPECT_THROW(oic::rl::load_mlp(bad1), oic::NumericalError);
  std::stringstream bad2("oic-mlp v1\nsizes: 2 2\n0.5\n");  // truncated
  EXPECT_THROW(oic::rl::load_mlp(bad2), oic::NumericalError);
  EXPECT_THROW(oic::rl::load_mlp_file("/nonexistent/path.txt"), oic::NumericalError);
}

}  // namespace
