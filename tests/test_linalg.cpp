// Unit tests for oic::linalg - vectors, matrices, LU, QR.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector.hpp"

namespace {

using oic::linalg::Matrix;
using oic::linalg::Vector;

TEST(Vector, ConstructionAndAccess) {
  Vector v{1.0, 2.0, 3.0};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  v[1] = 5.0;
  EXPECT_DOUBLE_EQ(v[1], 5.0);
  EXPECT_THROW(v[3], oic::PreconditionError);
}

TEST(Vector, Arithmetic) {
  const Vector a{1, 2}, b{3, -1};
  EXPECT_TRUE(approx_equal(a + b, Vector{4, 1}, 1e-15));
  EXPECT_TRUE(approx_equal(a - b, Vector{-2, 3}, 1e-15));
  EXPECT_TRUE(approx_equal(2.0 * a, Vector{2, 4}, 1e-15));
  EXPECT_TRUE(approx_equal(a / 2.0, Vector{0.5, 1}, 1e-15));
  EXPECT_TRUE(approx_equal(-a, Vector{-1, -2}, 1e-15));
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
}

TEST(Vector, DimensionMismatchThrows) {
  const Vector a{1, 2}, b{1, 2, 3};
  EXPECT_THROW(a + b, oic::PreconditionError);
  EXPECT_THROW(dot(a, b), oic::PreconditionError);
}

TEST(Vector, Norms) {
  const Vector v{3, -4};
  EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm1(), 7.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
}

TEST(Vector, Concat) {
  const Vector c = concat(Vector{1, 2}, Vector{3});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  ASSERT_EQ(m.rows(), 3u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_THROW(m(3, 0), oic::PreconditionError);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), oic::PreconditionError);
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  const Matrix d = Matrix::diag(Vector{2, 5});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, Product) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{0, 1}, {1, 0}};
  const Matrix c = a * b;
  EXPECT_TRUE(approx_equal(c, Matrix{{2, 1}, {4, 3}}, 1e-15));
  const Vector y = a * Vector{1, 1};
  EXPECT_TRUE(approx_equal(y, Vector{3, 7}, 1e-15));
}

TEST(Matrix, TransposeAndTransposeMul) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  // transpose_mul(a, x) == a^T x
  const Vector x{1, -1};
  EXPECT_TRUE(approx_equal(transpose_mul(a, x), t * x, 1e-14));
}

TEST(Matrix, RowColSetters) {
  Matrix m(2, 2);
  m.set_row(0, Vector{1, 2});
  m.set_col(1, Vector{7, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
  EXPECT_TRUE(approx_equal(m.row(1), Vector{0, 8}, 1e-15));
}

TEST(Matrix, PowMatchesRepeatedProduct) {
  const Matrix a{{1, 1}, {0, 1}};
  const Matrix a5 = pow(a, 5);
  EXPECT_TRUE(approx_equal(a5, Matrix{{1, 5}, {0, 1}}, 1e-12));
  EXPECT_TRUE(approx_equal(pow(a, 0), Matrix::identity(2), 1e-15));
}

TEST(Matrix, ConcatHelpers) {
  const Matrix a{{1}, {2}};
  const Matrix b{{3}, {4}};
  const Matrix h = oic::linalg::hcat(a, b);
  EXPECT_DOUBLE_EQ(h(1, 1), 4.0);
  const Matrix v = oic::linalg::vcat(a, b);
  ASSERT_EQ(v.rows(), 4u);
  EXPECT_DOUBLE_EQ(v(3, 0), 4.0);
}

TEST(LU, SolveKnownSystem) {
  const Matrix a{{2, 1}, {1, 3}};
  const Vector b{3, 5};
  const Vector x = oic::linalg::solve(a, b);
  EXPECT_TRUE(approx_equal(a * x, b, 1e-12));
}

TEST(LU, InverseRoundTrip) {
  const Matrix a{{4, 7, 2}, {3, 6, 1}, {2, 5, 3}};
  const Matrix ainv = oic::linalg::inverse(a);
  EXPECT_TRUE(approx_equal(a * ainv, Matrix::identity(3), 1e-10));
  EXPECT_TRUE(approx_equal(ainv * a, Matrix::identity(3), 1e-10));
}

TEST(LU, Determinant) {
  EXPECT_NEAR(oic::linalg::det(Matrix{{2, 0}, {0, 3}}), 6.0, 1e-12);
  EXPECT_NEAR(oic::linalg::det(Matrix{{0, 1}, {1, 0}}), -1.0, 1e-12);
  // det(A) for a known 3x3.
  const Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}};
  EXPECT_NEAR(oic::linalg::det(a), -3.0, 1e-9);
}

TEST(LU, SingularDetectedAndSolveThrows) {
  const Matrix a{{1, 2}, {2, 4}};
  oic::linalg::LU lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_THROW(lu.solve(Vector{1, 1}), oic::NumericalError);
  EXPECT_THROW(oic::linalg::inverse(a), oic::NumericalError);
}

TEST(LU, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0, 1}, {1, 0}};
  const Vector x = oic::linalg::solve(a, Vector{2, 3});
  EXPECT_TRUE(approx_equal(x, Vector{3, 2}, 1e-12));
}

TEST(LU, MatrixRhsSolve) {
  const Matrix a{{2, 0}, {0, 4}};
  const Matrix b{{2, 4}, {8, 12}};
  const Matrix x = oic::linalg::LU(a).solve(b);
  EXPECT_TRUE(approx_equal(a * x, b, 1e-12));
}

TEST(QR, SolvesSquareSystem) {
  const Matrix a{{2, 1}, {1, 3}};
  const Vector b{3, 5};
  const Vector x = oic::linalg::QR(a).solve(b);
  EXPECT_TRUE(approx_equal(a * x, b, 1e-10));
}

TEST(QR, LeastSquaresResidualOrthogonal) {
  // Overdetermined fit: residual must be orthogonal to the column space.
  const Matrix a{{1, 0}, {1, 1}, {1, 2}, {1, 3}};
  const Vector b{0.1, 0.9, 2.1, 2.9};
  const Vector x = oic::linalg::lstsq(a, b);
  const Vector r = a * x - b;
  const Vector atr = transpose_mul(a, r);
  EXPECT_LT(atr.norm_inf(), 1e-10);
}

TEST(QR, RankDeficientDetected) {
  const Matrix a{{1, 1}, {2, 2}, {3, 3}};
  oic::linalg::QR qr(a);
  EXPECT_TRUE(qr.rank_deficient());
  EXPECT_THROW(qr.solve(Vector{1, 2, 3}), oic::NumericalError);
}

// Property sweep: LU solve must reproduce random right-hand sides across a
// family of well-conditioned matrices.
class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, RandomSystemsRoundTrip) {
  const int seed = GetParam();
  oic::Rng rng{static_cast<std::uint64_t>(seed)};
  const std::size_t n = static_cast<std::size_t>(2 + seed % 5);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += static_cast<double>(n);  // diagonal dominance => invertible
  }
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.uniform(-5, 5);
  const Vector x = oic::linalg::solve(a, b);
  EXPECT_TRUE(approx_equal(a * x, b, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuProperty, ::testing::Range(0, 25));

}  // namespace
