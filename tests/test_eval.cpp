// Tests for the plant-generic evaluation layer: the scenario registry
// (round-trip construction, clone/reseed determinism), the new plants'
// tube-MPC safety (left_x must never fire), the sweep driver's golden-value
// parity with the pre-lift ACC harness, and the oic_eval end-to-end path
// (micro-sweep per plant + JSON output).

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "acc/engine.hpp"
#include "common/error.hpp"
#include "acc/scenarios.hpp"
#include "core/policy.hpp"
#include "eval/plants/lane_keep.hpp"
#include "eval/plants/quad_alt.hpp"
#include "eval/registry.hpp"
#include "eval/sweep.hpp"

namespace {

using oic::Rng;
using oic::eval::ScenarioRegistry;

// Plant construction derives the invariant and strengthened sets (many LP
// solves); share one instance of each across the tests in this binary.
oic::eval::PlantCase& shared_plant(const std::string& id) {
  static std::map<std::string, std::unique_ptr<oic::eval::PlantCase>> plants;
  auto it = plants.find(id);
  if (it == plants.end()) {
    it = plants.emplace(id, ScenarioRegistry::builtin().make_plant(id)).first;
  }
  return *it->second;
}

// ---------------------------------------------------------------- registry

TEST(Registry, ListsBuiltinPlants) {
  const auto& reg = ScenarioRegistry::builtin();
  const auto ids = reg.plant_ids();
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[0], "acc");
  EXPECT_EQ(ids[1], "lane-keep");
  EXPECT_EQ(ids[2], "quad-alt");
  EXPECT_EQ(ids[3], "toy2d");
  EXPECT_EQ(ids[4], "rare1d");
  // The analytic rare-event bed is test-only: every sweeping driver
  // defaults to the production list, which filters it out.
  const auto prod = reg.production_plant_ids();
  ASSERT_EQ(prod.size(), 4u);
  EXPECT_EQ(prod[0], "acc");
  EXPECT_EQ(prod[3], "toy2d");
  EXPECT_TRUE(reg.plant("rare1d").test_only);
  EXPECT_FALSE(reg.plant("acc").test_only);
  EXPECT_TRUE(reg.has_plant("acc"));
  EXPECT_FALSE(reg.has_plant("submarine"));
  EXPECT_THROW(reg.plant("submarine"), oic::PreconditionError);
  EXPECT_THROW(reg.make_scenario("acc", "sine"), oic::PreconditionError);
  EXPECT_THROW(reg.make_scenario("lane-keep", "Ex.1"), oic::PreconditionError);
  EXPECT_THROW(reg.make_scenario("toy2d", "gusts"), oic::PreconditionError);
  // Every production plant exposes its declarative model with a matching
  // id; the analytic bed has no controller/certificate and throws from
  // every factory.
  for (const auto& pid : prod) EXPECT_EQ(reg.make_model(pid).id, pid);
  EXPECT_THROW(reg.make_model("rare1d"), oic::PreconditionError);
  EXPECT_THROW(reg.make_scenario("rare1d", "analytic"), oic::PreconditionError);
}

TEST(Registry, EveryScenarioConstructsClonesAndReseedsDeterministically) {
  const auto& reg = ScenarioRegistry::builtin();
  for (const auto& pid : reg.production_plant_ids()) {
    for (const auto& sid : reg.plant(pid).scenario_ids) {
      const auto scenario = reg.make_scenario(pid, sid);
      EXPECT_EQ(scenario.id, sid) << pid;
      ASSERT_NE(scenario.profile, nullptr) << pid << "/" << sid;
      EXPECT_FALSE(scenario.description.empty()) << pid << "/" << sid;

      // Round-trip: an independently constructed copy, a clone, and the
      // original all emit the identical sequence for the same seed; and
      // reseeding the same profile reproduces it (reset is complete).
      const auto again = reg.make_scenario(pid, sid);
      auto a = scenario.profile->clone();
      auto b = again.profile->clone();
      auto c = scenario.profile->clone();
      a->reset(Rng(20240607));
      b->reset(Rng(20240607));
      c->reset(Rng(999));
      std::vector<double> seq_a;
      for (int t = 0; t < 60; ++t) {
        const double va = a->next();
        seq_a.push_back(va);
        EXPECT_EQ(va, b->next()) << pid << "/" << sid << " step " << t;
        (void)c->next();  // advance a differently-seeded stream
      }
      c->reset(Rng(20240607));
      for (int t = 0; t < 60; ++t) {
        EXPECT_EQ(seq_a[t], c->next()) << pid << "/" << sid << " reseed step " << t;
      }
      // Emitted signals respect the profile's declared range (the plants'
      // disturbance sets W are sized from it).
      for (const double v : seq_a) {
        EXPECT_GE(v, scenario.profile->v_min()) << pid << "/" << sid;
        EXPECT_LE(v, scenario.profile->v_max()) << pid << "/" << sid;
      }
    }
  }
}

// ----------------------------------------------------------------- policies

TEST(PolicyFactory, ParsesKnownSpecsAndRejectsUnknown) {
  EXPECT_EQ(oic::eval::make_policy("always-run")->name(), "always-run");
  EXPECT_EQ(oic::eval::make_policy("bang-bang")->name(), "bang-bang");
  EXPECT_EQ(oic::eval::make_policy("periodic-5")->name(), "periodic(5)");
  EXPECT_THROW(oic::eval::make_policy("periodic-0"), oic::PreconditionError);
  EXPECT_THROW(oic::eval::make_policy("periodic-x"), oic::PreconditionError);
  EXPECT_THROW(oic::eval::make_policy("drl"), oic::PreconditionError);
  EXPECT_THROW(oic::eval::make_policy_factory({}), oic::PreconditionError);

  const auto factory = oic::eval::make_policy_factory({"bang-bang", "periodic-3"});
  const auto set_a = factory();
  const auto set_b = factory();
  ASSERT_EQ(set_a.size(), 2u);
  ASSERT_EQ(set_b.size(), 2u);
  EXPECT_EQ(set_a[0]->name(), set_b[0]->name());
  EXPECT_NE(set_a[0].get(), set_b[0].get());  // independently mutable instances
}

// ------------------------------------------------------- new-plant safety

void expect_safe_full_sweep(const std::string& plant_id) {
  oic::eval::SweepSpec spec;
  spec.plants = {plant_id};  // all scenarios of the plant
  spec.policies = {"bang-bang", "periodic-4"};
  spec.cases = 4;
  spec.steps = 60;
  spec.workers = 2;
  const auto result = oic::eval::run_sweep(ScenarioRegistry::builtin(), spec);
  const auto& info = ScenarioRegistry::builtin().plant(plant_id);
  ASSERT_EQ(result.cells.size(), info.scenario_ids.size());
  EXPECT_FALSE(result.safety_violations);
  for (const auto& cell : result.cells) {
    for (std::size_t p = 0; p < cell.result.policy_names.size(); ++p) {
      EXPECT_FALSE(cell.result.any_violation[p])
          << plant_id << "/" << cell.scenario << " " << cell.result.policy_names[p];
      // The monitor must actually be exercising skips, not just vetoing.
      EXPECT_GT(cell.result.mean_skipped[p], 0.0)
          << plant_id << "/" << cell.scenario;
    }
  }
}

TEST(NewPlants, LaneKeepFullSweepIsSafe) { expect_safe_full_sweep("lane-keep"); }

TEST(NewPlants, QuadAltFullSweepIsSafe) { expect_safe_full_sweep("quad-alt"); }

TEST(NewPlants, Toy2dFullSweepIsSafe) { expect_safe_full_sweep("toy2d"); }

TEST(NewPlants, EngineMatchesLegacyRunEpisode) {
  // The generic engine must agree with the generic per-episode harness on
  // the new plants exactly, as it does for the ACC (test_engine).
  for (const std::string pid : {"lane-keep", "quad-alt"}) {
    auto& plant = shared_plant(pid);
    const auto scenario = ScenarioRegistry::builtin().make_scenario(pid, "sine");
    Rng rng(321);
    oic::core::BangBangPolicy bb;
    oic::eval::EpisodeEngine engine(plant, bb);
    for (int c = 0; c < 2; ++c) {
      const auto data = oic::eval::make_case(plant, scenario, rng, 50);
      const auto legacy = oic::eval::run_episode(plant, bb, data);
      const auto fast = engine.run(data);
      EXPECT_DOUBLE_EQ(legacy.fuel, fast.fuel) << pid;
      EXPECT_DOUBLE_EQ(legacy.energy, fast.energy) << pid;
      EXPECT_EQ(legacy.skipped, fast.skipped) << pid;
      EXPECT_EQ(legacy.left_x, fast.left_x) << pid;
      EXPECT_EQ(legacy.left_xi, fast.left_xi) << pid;
    }
  }
}

// ------------------------------------------------ ACC parity (golden values)

TEST(SweepDriver, ReproducesGoldenAccHarnessNumbers) {
  // Golden values pinning the full sweep-driver stream (Ex.1, bang-bang +
  // periodic-5, cases=4, steps=50, seed=20200406, workers=1) -- the exact
  // code path behind `oic_eval --plant acc --scenario Ex.1 --policies
  // bang-bang,periodic-5` must reproduce them bit for bit; test_engine
  // separately pins the engine to the per-episode harness.  Re-pinned
  // when Rng::split() moved to splitmix64 stream derivation (the case
  // stream -- x0 draws and profile seeds -- changed with it), and again
  // when warm-solve cold restarts moved to the canonical-seed dual
  // continuation (equally-optimal argmins shifted by ~1e-13 on degenerate
  // MPC steps; docs/perf.md quantifies the drift); any further
  // unintentional drift in sampling, dynamics, or solver behavior fails
  // here.
  const double golden_bb[4] = {0.7262241205374529, 0.1285438409626803,
                               0.5876510688940028, 0.6097358845352306};
  const double golden_p5[4] = {0.42436035407119083, 0.08694322151804597,
                               0.43116050789058274, 0.40275300056190116};

  oic::eval::SweepSpec spec;
  spec.plants = {"acc"};
  spec.scenarios = {"Ex.1"};
  spec.policies = {"bang-bang", "periodic-5"};
  spec.cases = 4;
  spec.steps = 50;
  spec.seeds = {20200406};
  spec.workers = 1;
  const auto result = oic::eval::run_sweep(ScenarioRegistry::builtin(), spec);
  ASSERT_EQ(result.cells.size(), 1u);
  const auto& r = result.cells[0].result;
  ASSERT_EQ(r.policy_names.size(), 2u);
  EXPECT_EQ(r.policy_names[0], "bang-bang");
  EXPECT_EQ(r.policy_names[1], "periodic(5)");
  ASSERT_EQ(r.savings[0].size(), 4u);
  for (int c = 0; c < 4; ++c) {
    EXPECT_DOUBLE_EQ(r.savings[0][c], golden_bb[c]) << "case " << c;
    EXPECT_DOUBLE_EQ(r.savings[1][c], golden_p5[c]) << "case " << c;
  }
  EXPECT_DOUBLE_EQ(r.mean_skipped[0], 43.25);
  EXPECT_DOUBLE_EQ(r.mean_skipped[1], 37.5);
  EXPECT_FALSE(result.safety_violations);
}

// --------------------------------------------------------------- end-to-end

// Minimal JSON syntax validator (objects/arrays/strings/numbers/booleans);
// enough to catch malformed emission without a JSON dependency.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') { ++pos_; continue; }
      if (s_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(SweepDriver, EndToEndMicroSweepPerPlantEmitsValidJson) {
  // The oic_eval code path over every registered plant: a 2-case
  // micro-sweep each, JSON must parse, and safety_violations must be false
  // both in the struct and in the document.
  oic::eval::SweepSpec spec;  // plants/scenarios empty = all registered
  spec.policies = {"bang-bang", "periodic-5"};
  spec.cases = 2;
  spec.steps = 25;
  spec.workers = 2;
  const auto& reg = ScenarioRegistry::builtin();
  const auto result = oic::eval::run_sweep(reg, spec);

  std::size_t expected_cells = 0;
  for (const auto& pid : reg.production_plant_ids()) {
    expected_cells += reg.plant(pid).scenario_ids.size();
  }
  EXPECT_EQ(result.cells.size(), expected_cells);
  EXPECT_FALSE(result.safety_violations);
  EXPECT_EQ(result.episodes, expected_cells * 2 * 3);  // baseline + 2 policies

  const std::string doc = oic::eval::sweep_json(spec, result);
  JsonScanner scanner(doc);
  EXPECT_TRUE(scanner.valid()) << doc.substr(0, 400);

  // Schema anchors shared with bench_throughput + the verdict.
  EXPECT_NE(doc.find("\"bench\": \"oic_eval\""), std::string::npos);
  EXPECT_NE(doc.find("\"config\""), std::string::npos);
  EXPECT_NE(doc.find("\"cases\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"episodes_per_s\""), std::string::npos);
  EXPECT_NE(doc.find("\"step_ns\""), std::string::npos);
  EXPECT_NE(doc.find("\"safety_violations\": false"), std::string::npos);
}

TEST(SweepDriver, DefaultedPlantsIntersectExplicitScenarios) {
  // `--scenario sine` with no --plant must sweep exactly the plants that
  // list "sine" (lane-keep, quad-alt, and toy2d; the ACC does not), not
  // hard-fail on the first plant lacking it.
  const auto& reg = ScenarioRegistry::builtin();
  oic::eval::SweepSpec spec;
  spec.scenarios = {"sine"};
  spec.policies = {"bang-bang"};
  spec.cases = 2;
  spec.steps = 20;
  spec.workers = 1;
  const auto result = oic::eval::run_sweep(reg, spec);
  ASSERT_EQ(result.cells.size(), 3u);
  EXPECT_EQ(result.cells[0].plant, "lane-keep");
  EXPECT_EQ(result.cells[1].plant, "quad-alt");
  EXPECT_EQ(result.cells[2].plant, "toy2d");
  for (const auto& cell : result.cells) EXPECT_EQ(cell.scenario, "sine");

  // A scenario no plant lists is still an error, even with defaulted plants.
  spec.scenarios = {"warp"};
  EXPECT_THROW(oic::eval::run_sweep(reg, spec), oic::PreconditionError);
}

TEST(SweepDriver, RejectsBadGridsBeforeBuildingPlants) {
  const auto& reg = ScenarioRegistry::builtin();
  oic::eval::SweepSpec spec;
  spec.plants = {"submarine"};
  EXPECT_THROW(oic::eval::run_sweep(reg, spec), oic::PreconditionError);
  spec.plants = {"lane-keep"};
  spec.scenarios = {"Ex.1"};  // an ACC scenario: not on lane-keep
  EXPECT_THROW(oic::eval::run_sweep(reg, spec), oic::PreconditionError);
  spec.scenarios = {};
  spec.policies = {"warp-drive"};
  EXPECT_THROW(oic::eval::run_sweep(reg, spec), oic::PreconditionError);
  spec.policies = {"bang-bang"};
  spec.cases = 0;
  EXPECT_THROW(oic::eval::run_sweep(reg, spec), oic::PreconditionError);
}

}  // namespace
