// Tests for the fault-injection layer (src/fault) and graceful monitor
// degradation: spec grammar round-trip and rejection, deterministic
// per-channel fault streams, faults-off bit-identity with the legacy
// paths, harness/engine bit-parity on the faulted path, conservative
// degradation under total blackout, and the lossy-preset safety sweep
// across every registry plant (zero hard safe-set violations).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cert/store.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "eval/engine.hpp"
#include "eval/harness.hpp"
#include "eval/registry.hpp"
#include "eval/sweep.hpp"
#include "fault/fault.hpp"

namespace {

using oic::Rng;
using oic::eval::CaseData;
using oic::eval::EpisodeResult;
using oic::eval::ScenarioRegistry;
using oic::fault::FaultSpec;
using oic::fault::Link;
using oic::fault::Measurement;

// Shared scratch certificate cache: each plant's synthesis LPs run once
// for the whole binary, later constructions are file-read-bound.
std::string cert_dir() {
  static const std::string dir = [] {
    auto d = std::filesystem::temp_directory_path() / "oic-test-fault-certs";
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d.string();
  }();
  return dir;
}

const oic::cert::Store& shared_store() {
  static const oic::cert::Store store(cert_dir());
  return store;
}

std::unique_ptr<oic::eval::PlantCase> build_plant(const std::string& id) {
  return ScenarioRegistry::builtin().make_plant(id, shared_store().provider());
}

void expect_same_episode(const EpisodeResult& a, const EpisodeResult& b) {
  EXPECT_EQ(a.fuel, b.fuel);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.forced, b.forced);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.left_x, b.left_x);
  EXPECT_EQ(a.left_xi, b.left_xi);
  EXPECT_EQ(a.degraded_steps, b.degraded_steps);
  EXPECT_EQ(a.stale_forced, b.stale_forced);
  EXPECT_EQ(a.policy_unavail, b.policy_unavail);
  EXPECT_EQ(a.meas_dropped, b.meas_dropped);
  EXPECT_EQ(a.act_dropped, b.act_dropped);
}

// ------------------------------------------------------------------ spec

TEST(FaultSpec, ParsesTheGrammarAndCanonicalizes) {
  const FaultSpec off1 = FaultSpec::parse("");
  const FaultSpec off2 = FaultSpec::parse("off");
  EXPECT_FALSE(off1.active());
  EXPECT_FALSE(off2.active());
  EXPECT_EQ(off1.canonical(), "");

  const FaultSpec lossy =
      FaultSpec::parse("meas_drop:0.05,meas_delay:2,act_drop:0.02,hold");
  EXPECT_TRUE(lossy.active());
  EXPECT_DOUBLE_EQ(lossy.meas_drop, 0.05);
  EXPECT_EQ(lossy.meas_delay, 2u);
  EXPECT_DOUBLE_EQ(lossy.act_drop, 0.02);
  EXPECT_EQ(lossy.act_mode, oic::fault::ActDropMode::kHold);

  // canonical() is a fixed-point of parse(): re-parsing it reproduces the
  // same canonical string, and key order / spelling do not matter.
  const std::string canon = lossy.canonical();
  EXPECT_EQ(FaultSpec::parse(canon).canonical(), canon);
  const FaultSpec respelled =
      FaultSpec::parse("hold,act_drop:0.02,meas_delay:2,meas_drop:0.05");
  EXPECT_EQ(respelled.canonical(), canon);

  // Every key appears in the canonical form when set.
  const FaultSpec full = FaultSpec::parse(
      "meas_drop:0.1,meas_delay:1,meas_jitter:2,meas_spike:0.2,"
      "spike_gain:0.25,act_drop:0.3,zero,policy_drop:0.4");
  EXPECT_EQ(FaultSpec::parse(full.canonical()).canonical(), full.canonical());
  EXPECT_EQ(full.meas_jitter, 2u);
  EXPECT_DOUBLE_EQ(full.spike_gain, 0.25);
  EXPECT_DOUBLE_EQ(full.policy_drop, 0.4);
  EXPECT_EQ(full.act_mode, oic::fault::ActDropMode::kZero);
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(FaultSpec::parse("meas_drop:1.5"), oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("meas_drop:-0.1"), oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("meas_drop:abc"), oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("meas_drop:0.1x"), oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("meas_drop"), oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("warp_drive:0.5"), oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("meas_delay:65"), oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("meas_drop:0.1,meas_drop:0.2"),
               oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("hold,zero"), oic::PreconditionError);
  EXPECT_THROW(FaultSpec::parse("spike_gain:nan"), oic::PreconditionError);
}

TEST(FaultSpec, PresetsResolveThroughTheRegistry) {
  const ScenarioRegistry& reg = ScenarioRegistry::builtin();
  EXPECT_FALSE(reg.fault_presets().empty());
  const FaultSpec lossy = reg.resolve_faults("lossy");
  EXPECT_TRUE(lossy.active());
  EXPECT_EQ(lossy.canonical(),
            FaultSpec::parse("meas_drop:0.05,meas_delay:2,act_drop:0.02,hold")
                .canonical());
  EXPECT_FALSE(reg.resolve_faults("").active());
  EXPECT_FALSE(reg.resolve_faults("off").active());
  // Unknown ids fall through to the grammar and reject loudly.
  EXPECT_THROW(reg.resolve_faults("no-such-preset"), oic::PreconditionError);
  // Every registered preset parses to an active spec.
  for (const auto& preset : reg.fault_presets()) {
    EXPECT_TRUE(reg.resolve_faults(preset.id).active()) << preset.id;
  }
}

// ------------------------------------------------------------------ link

TEST(Link, RealizationIsAPureFunctionOfSpecAndStream) {
  const FaultSpec spec =
      FaultSpec::parse("meas_drop:0.3,meas_delay:1,meas_jitter:2,act_drop:0.4");
  Link a(spec, 42), b(spec, 42);
  oic::linalg::Vector x(2), u(1);
  for (std::size_t t = 0; t < 100; ++t) {
    x[0] = static_cast<double>(t);
    x[1] = -0.5 * static_cast<double>(t);
    u[0] = 1.0;
    const Measurement& ma = a.sense_and_observe(t, x);
    const Measurement& mb = b.sense_and_observe(t, x);
    EXPECT_EQ(ma.available, mb.available) << t;
    if (ma.available && mb.available) {
      EXPECT_EQ(ma.age, mb.age) << t;
      EXPECT_EQ(ma.x[0], mb.x[0]) << t;
    }
    EXPECT_EQ(a.policy_available(t), b.policy_available(t)) << t;
    EXPECT_EQ(a.actuate(t, u)[0], b.actuate(t, u)[0]) << t;
  }
  EXPECT_EQ(a.meas_dropped(), b.meas_dropped());
  EXPECT_EQ(a.act_dropped(), b.act_dropped());
  EXPECT_GT(a.meas_dropped(), 0u);
  EXPECT_GT(a.act_dropped(), 0u);

  // A different stream realizes a different loss pattern (statistical).
  Link c(spec, 43);
  bool any_diff = false;
  for (std::size_t t = 0; t < 100; ++t) {
    x[0] = static_cast<double>(t);
    x[1] = 0.0;
    any_diff = any_diff ||
               c.sense_and_observe(t, x).available !=
                   a.sense_and_observe(t, x).available;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Link, ChannelsDrawFromIndependentSubstreams) {
  // Adding an actuation fault must not perturb the measurement channel's
  // realization: each channel derives its own substream.
  const FaultSpec meas_only = FaultSpec::parse("meas_drop:0.3");
  const FaultSpec both = FaultSpec::parse("meas_drop:0.3,act_drop:0.5,policy_drop:0.2");
  Link a(meas_only, 7), b(both, 7);
  oic::linalg::Vector x(1);
  for (std::size_t t = 0; t < 200; ++t) {
    x[0] = static_cast<double>(t);
    EXPECT_EQ(a.sense_and_observe(t, x).available,
              b.sense_and_observe(t, x).available)
        << t;
  }
  EXPECT_EQ(a.meas_dropped(), b.meas_dropped());
}

TEST(Link, HoldSemanticsReapplyTheLastDeliveredInput) {
  const FaultSpec spec = FaultSpec::parse("act_drop:0.5,hold");
  Link link(spec, 11);
  oic::linalg::Vector u(1);
  double last_delivered = 0.0;  // hold register starts at zero
  for (std::size_t t = 0; t < 200; ++t) {
    u[0] = static_cast<double>(t) + 1.0;
    const double applied = link.actuate(t, u)[0];
    if (applied == u[0]) {
      last_delivered = applied;  // delivered: register updates
    } else {
      EXPECT_EQ(applied, last_delivered) << t;  // dropped: hold re-applies
    }
  }
  EXPECT_GT(link.act_dropped(), 0u);
  EXPECT_LT(link.act_dropped(), 200u);
}

// ----------------------------------------------------- episode/engine

TEST(FaultedEpisode, InactiveSpecIsBitIdenticalToTheLegacyPath) {
  auto plant = build_plant("toy2d");
  const auto scen = ScenarioRegistry::builtin().make_scenario("toy2d", "sine");
  auto bb = oic::eval::make_policy("bang-bang");
  Rng rng(123);
  for (int c = 0; c < 3; ++c) {
    // with_fault_stream=false: the case stream must match history exactly.
    const CaseData data = oic::eval::make_case(*plant, scen, rng, 50);
    bb->reset();
    const EpisodeResult legacy = oic::eval::run_episode(*plant, *bb, data);
    bb->reset();
    const EpisodeResult via_spec =
        oic::eval::run_episode(*plant, *bb, data, FaultSpec{});
    expect_same_episode(legacy, via_spec);
    EXPECT_EQ(via_spec.degraded_steps, 0u);
    EXPECT_EQ(via_spec.meas_dropped, 0u);

    oic::eval::EpisodeEngine engine(*plant, *bb, FaultSpec{});
    expect_same_episode(legacy, engine.run(data));
  }
}

TEST(FaultedEpisode, HarnessAndEngineAgreeBitForBitUnderFaults) {
  auto plant = build_plant("toy2d");
  const auto scen = ScenarioRegistry::builtin().make_scenario("toy2d", "sine");
  const FaultSpec spec = FaultSpec::parse(
      "meas_drop:0.15,meas_delay:1,meas_jitter:1,meas_spike:0.05,"
      "act_drop:0.1,hold,policy_drop:0.1");
  for (const char* pspec : {"bang-bang", "periodic-3", "burst:3"}) {
    auto policy = oic::eval::make_policy(pspec);
    oic::eval::EpisodeEngine engine(*plant, *policy, spec);
    Rng rng(321);
    bool any_degraded = false;
    for (int c = 0; c < 4; ++c) {
      const CaseData data = oic::eval::make_case(*plant, scen, rng, 60, true);
      policy->reset();
      const EpisodeResult harness =
          oic::eval::run_episode(*plant, *policy, data, spec);
      const EpisodeResult fast = engine.run(data);
      expect_same_episode(harness, fast);
      any_degraded = any_degraded || harness.degraded_steps > 0;
      // Degraded-mode conservatism: even under faults the hard safe set
      // holds on this plant.
      EXPECT_FALSE(harness.left_x) << pspec << " case " << c;
    }
    EXPECT_TRUE(any_degraded) << pspec;
  }
}

TEST(FaultedEpisode, TotalSensorBlackoutDegradesEveryStep) {
  auto plant = build_plant("toy2d");
  const auto scen = ScenarioRegistry::builtin().make_scenario("toy2d", "sine");
  auto bb = oic::eval::make_policy("bang-bang");
  Rng rng(55);
  const CaseData data = oic::eval::make_case(*plant, scen, rng, 40, true);
  const EpisodeResult r =
      oic::eval::run_episode(*plant, *bb, data, FaultSpec::parse("meas_drop:1"));
  EXPECT_EQ(r.meas_dropped, r.steps);
  EXPECT_EQ(r.degraded_steps, r.steps);
  // No measurement ever arrives: every period is a stale-forced
  // conservative default (bang-bang never has a burst in flight).
  EXPECT_EQ(r.stale_forced, r.steps);
  EXPECT_EQ(r.skipped, 0u);
}

TEST(FaultedEpisode, PolicyOutageForcesTheConservativeDefault) {
  auto plant = build_plant("toy2d");
  const auto scen = ScenarioRegistry::builtin().make_scenario("toy2d", "sine");
  auto periodic = oic::eval::make_policy("periodic-5");
  Rng rng(56);
  const CaseData data = oic::eval::make_case(*plant, scen, rng, 40, true);
  const EpisodeResult r = oic::eval::run_episode(*plant, *periodic, data,
                                                 FaultSpec::parse("policy_drop:1"));
  // Omega is never available; every fresh in-X' step substitutes z = 1.
  EXPECT_EQ(r.policy_unavail + r.stale_forced, r.degraded_steps);
  EXPECT_GT(r.policy_unavail, 0u);
  EXPECT_EQ(r.skipped, 0u);
  EXPECT_FALSE(r.left_x);
}

// ------------------------------------------------------------- sweeps

TEST(FaultedSweep, ParallelComparisonIsWorkerCountInvariantUnderFaults) {
  auto plant = build_plant("toy2d");
  const auto scen = ScenarioRegistry::builtin().make_scenario("toy2d", "sine");
  const auto factory = oic::eval::make_policy_factory({"bang-bang", "periodic-4"});

  oic::eval::SweepConfig cfg;
  cfg.cases = 6;
  cfg.steps = 40;
  cfg.seed = 999;
  cfg.faults = FaultSpec::parse("meas_drop:0.2,act_drop:0.1,hold");

  cfg.workers = 1;
  const auto serial = oic::eval::compare_policies_parallel(*plant, scen, factory, cfg);
  cfg.workers = 3;
  const auto sharded = oic::eval::compare_policies_parallel(*plant, scen, factory, cfg);

  ASSERT_EQ(serial.policy_names, sharded.policy_names);
  for (std::size_t p = 0; p < serial.savings.size(); ++p) {
    ASSERT_EQ(serial.savings[p].size(), sharded.savings[p].size());
    for (std::size_t c = 0; c < serial.savings[p].size(); ++c) {
      EXPECT_EQ(serial.savings[p][c], sharded.savings[p][c])
          << "policy " << p << " case " << c;
    }
    EXPECT_EQ(serial.mean_skipped[p], sharded.mean_skipped[p]);
    EXPECT_EQ(serial.mean_degraded[p], sharded.mean_degraded[p]);
    EXPECT_EQ(serial.any_left_x[p], sharded.any_left_x[p]);
  }
}

TEST(FaultedSweep, LossyPresetKeepsEveryRegistryPlantInsideTheHardSafeSet) {
  // The headline robustness claim, in miniature: the flagship lossy fault
  // model over EVERY registry plant and its full scenario catalogue, with
  // zero hard safe-set violations.  XI excursions are allowed (measured
  // degradation); leaving X is not.
  oic::eval::SweepSpec spec;
  spec.policies = {"bang-bang"};
  spec.cases = 3;
  spec.steps = 40;
  spec.workers = 2;
  spec.cert_dir = cert_dir();
  spec.faults = "lossy";
  const auto& registry = ScenarioRegistry::builtin();
  const auto result = oic::eval::run_sweep(registry, spec);

  std::size_t plants_seen = 0;
  double total_degraded = 0.0;
  std::string last_plant;
  for (const auto& cell : result.cells) {
    if (cell.plant != last_plant) {
      ++plants_seen;
      last_plant = cell.plant;
    }
    for (std::size_t p = 0; p < cell.result.policy_names.size(); ++p) {
      EXPECT_FALSE(cell.result.any_left_x[p])
          << cell.plant << "/" << cell.scenario;
      total_degraded += cell.result.mean_degraded[p];
    }
  }
  EXPECT_EQ(plants_seen, registry.production_plant_ids().size());
  EXPECT_GT(total_degraded, 0.0);
  EXPECT_FALSE(result.safety_violations);
  EXPECT_TRUE(result.faults.active());
}

TEST(FaultedSweep, FaultsOffSweepIsBitIdenticalToTheHistoricalSweep) {
  // The default-off guarantee at the sweep level: an explicit "off" and an
  // absent fault flag produce identical cells.
  oic::eval::SweepSpec spec;
  spec.plants = {"toy2d"};
  spec.scenarios = {"sine"};
  spec.policies = {"bang-bang", "periodic-3"};
  spec.cases = 4;
  spec.steps = 30;
  spec.workers = 1;
  spec.cert_dir = cert_dir();
  const auto& registry = ScenarioRegistry::builtin();
  const auto plain = oic::eval::run_sweep(registry, spec);
  spec.faults = "off";
  const auto off = oic::eval::run_sweep(registry, spec);
  ASSERT_EQ(plain.cells.size(), off.cells.size());
  for (std::size_t i = 0; i < plain.cells.size(); ++i) {
    EXPECT_EQ(plain.cells[i].result.savings, off.cells[i].result.savings);
    EXPECT_EQ(plain.cells[i].result.mean_skipped, off.cells[i].result.mean_skipped);
    EXPECT_EQ(plain.cells[i].result.mean_degraded, off.cells[i].result.mean_degraded);
  }
  EXPECT_FALSE(off.faults.active());
}

}  // namespace
