// Tests for the certificate layer: round-trippable vector/matrix/polytope
// I/O, `oic-cert v1` serialization (wrong-version / truncation / hash-
// mismatch rejection), the store's load-or-synthesize cache, the golden
// guarantee that loading reproduces fresh synthesis bit for bit on every
// registry plant, and the certified burst-skip mode (default off must be
// bit-identical; engaged bursts must stay inside XI).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cert/io.hpp"
#include "cert/store.hpp"
#include "common/error.hpp"
#include "core/policy.hpp"
#include "eval/engine.hpp"
#include "eval/plants/second_order.hpp"
#include "eval/registry.hpp"
#include "eval/sweep.hpp"

namespace {

namespace fs = std::filesystem;

using oic::Rng;
using oic::cert::bit_equal;
using oic::cert::PlantCertificate;
using oic::cert::PlantModel;
using oic::eval::ScenarioRegistry;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

// Synthesis runs many LPs; share one certificate per plant across tests.
const PlantCertificate& shared_cert(const std::string& id) {
  static std::map<std::string, PlantCertificate> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    const PlantModel model = ScenarioRegistry::builtin().make_model(id);
    it = cache.emplace(id, oic::cert::synthesize(model)).first;
  }
  return it->second;
}

std::string fresh_dir(const char* name) {
  const fs::path dir =
      fs::temp_directory_path() / (std::string("oic-cert-test-") + name);
  fs::remove_all(dir);
  return dir.string();
}

// ------------------------------------------------------------------- io

TEST(CertIo, VectorAndMatrixRoundTripBitExact) {
  // Values chosen to stress the text round trip: non-terminating binary
  // fractions, negative zero, denormal-scale and large magnitudes.
  const Vector v{0.1, -1.0 / 3.0, -0.0, 1e-300, -9.87654321e17, 42.0};
  Matrix m(2, 3);
  m(0, 0) = 0.1;
  m(0, 1) = 2.0 / 7.0;
  m(0, 2) = -1e-17;
  m(1, 0) = 123456789.123456789;
  m(1, 1) = -0.0;
  m(1, 2) = 3.0;

  std::stringstream ss;
  oic::cert::write_vector(ss, v);
  oic::cert::write_matrix(ss, m);
  const Vector v2 = oic::cert::read_vector(ss);
  const Matrix m2 = oic::cert::read_matrix(ss);
  EXPECT_TRUE(bit_equal(v, v2));
  EXPECT_TRUE(bit_equal(m, m2));

  // Empty vector round-trips too.
  std::stringstream se;
  oic::cert::write_vector(se, Vector{});
  EXPECT_TRUE(bit_equal(Vector{}, oic::cert::read_vector(se)));
}

TEST(CertIo, PolytopeRoundTripIncludingEmptyAndSingleRow) {
  const HPolytope universe = HPolytope::universe(2);  // zero constraint rows
  const HPolytope single(Matrix{{1.0, -0.5, 0.25}}, Vector{1.5});
  const HPolytope box = HPolytope::box(Vector{-1.25, -3.5}, Vector{0.1, 7.0});
  for (const HPolytope* p : {&universe, &single, &box}) {
    std::stringstream ss;
    oic::cert::write_polytope(ss, *p);
    const HPolytope q = oic::cert::read_polytope(ss);
    EXPECT_TRUE(bit_equal(*p, q));
    EXPECT_EQ(p->num_constraints(), q.num_constraints());
    EXPECT_EQ(p->dim(), q.dim());
  }
}

TEST(CertIo, RejectsMalformedAndTruncatedPayloads) {
  {
    std::stringstream ss("vectr 2 1.0 2.0");
    EXPECT_THROW(oic::cert::read_vector(ss), oic::NumericalError);
  }
  {
    std::stringstream ss("vector 3 1.0 2.0");  // one value short
    EXPECT_THROW(oic::cert::read_vector(ss), oic::NumericalError);
  }
  {
    std::stringstream ss("matrix 2 2 1.0 2.0 3.0");  // truncated
    EXPECT_THROW(oic::cert::read_matrix(ss), oic::NumericalError);
  }
  {
    std::stringstream ss("polytope 1 2 1.0 0.0");  // missing offset
    EXPECT_THROW(oic::cert::read_polytope(ss), oic::NumericalError);
  }
  {
    std::stringstream ss("polytope 99999999999 2");  // absurd count
    EXPECT_THROW(oic::cert::read_polytope(ss), oic::NumericalError);
  }
}

// ---------------------------------------------------------- certificate

TEST(Certificate, RoundTripIsBitExactAndVerifiesOnAllRegistryPlants) {
  const auto& registry = ScenarioRegistry::builtin();
  // Production plants only: the test-only analytic bed has no model.
  for (const auto& pid : registry.production_plant_ids()) {
    const PlantModel model = registry.make_model(pid);
    const PlantCertificate& fresh = shared_cert(pid);
    EXPECT_EQ(fresh.plant, pid);
    EXPECT_EQ(fresh.model_hash, oic::cert::model_hash(model)) << pid;

    std::stringstream ss;
    oic::cert::save_certificate(fresh, ss);
    const PlantCertificate loaded = oic::cert::load_certificate(ss);
    EXPECT_TRUE(bit_equal(fresh, loaded)) << pid;

    // The independent re-check accepts both the fresh and the loaded copy.
    EXPECT_NO_THROW(oic::cert::verify(model, fresh)) << pid;
    EXPECT_NO_THROW(oic::cert::verify(model, loaded)) << pid;

    // The ladder's base is the strengthened set itself, bit for bit (the
    // ladder recursion starts from the identical XI), and the chain nests.
    ASSERT_FALSE(fresh.ladder.empty()) << pid;
    EXPECT_TRUE(bit_equal(fresh.ladder.front(), fresh.sets.x_prime)) << pid;
  }
}

TEST(Certificate, RejectsWrongMagicWrongVersionAndTruncation) {
  const PlantCertificate& cert = shared_cert("toy2d");
  std::stringstream ss;
  oic::cert::save_certificate(cert, ss);
  const std::string doc = ss.str();

  {
    std::stringstream bad("oic-agent v1\n" + doc.substr(doc.find('\n') + 1));
    EXPECT_THROW(oic::cert::load_certificate(bad), oic::NumericalError);
  }
  {
    std::stringstream bad("oic-cert v2\n" + doc.substr(doc.find('\n') + 1));
    EXPECT_THROW(oic::cert::load_certificate(bad), oic::NumericalError);
  }
  {
    std::stringstream bad(doc.substr(0, doc.size() / 2));  // mid-payload cut
    EXPECT_THROW(oic::cert::load_certificate(bad), oic::NumericalError);
  }
  {
    // A well-formed prefix missing only the end sentinel is truncated too.
    std::stringstream bad(doc.substr(0, doc.rfind("end")));
    EXPECT_THROW(oic::cert::load_certificate(bad), oic::NumericalError);
  }
  {
    std::stringstream ok(doc);
    EXPECT_NO_THROW(oic::cert::load_certificate(ok));
  }
}

TEST(Certificate, RejectsParsableButCorruptedPayload) {
  // The model hash only guards the synthesis inputs; a flipped digit in a
  // stored set still parses, so the payload hash must catch it.
  const PlantCertificate& cert = shared_cert("toy2d");
  std::stringstream ss;
  oic::cert::save_certificate(cert, ss);
  std::string doc = ss.str();

  // Corrupt the first nonzero digit of the k-lqr payload (the line after
  // the "matrix <rows> <cols>" header).
  const std::size_t header = doc.find("k-lqr:\nmatrix ");
  ASSERT_NE(header, std::string::npos);
  const std::size_t line = doc.find('\n', doc.find('\n', header + 7) + 1) + 1;
  const std::size_t pos = doc.find_first_of("123456789", line);
  ASSERT_NE(pos, std::string::npos);
  doc[pos] = (doc[pos] == '1') ? '2' : '1';

  std::stringstream corrupted(doc);
  EXPECT_THROW(oic::cert::load_certificate(corrupted), oic::NumericalError);
}

TEST(Certificate, HashMismatchIsDetectedAsStale) {
  const auto& registry = ScenarioRegistry::builtin();
  const PlantModel model = registry.make_model("toy2d");
  const PlantCertificate& cert = shared_cert("toy2d");

  // Any synthesis-relevant change to the model must flip the hash.
  PlantModel deeper = model;
  deeper.ladder_depth += 1;
  EXPECT_NE(oic::cert::model_hash(model), oic::cert::model_hash(deeper));
  PlantModel reweighted = model;
  reweighted.rmpc.input_weight *= 2.0;
  EXPECT_NE(oic::cert::model_hash(model), oic::cert::model_hash(reweighted));

  // verify and the runtime assembly both reject the stale pairing.
  EXPECT_THROW(oic::cert::verify(deeper, cert), oic::NumericalError);
  EXPECT_THROW(oic::eval::runtime_from_certificate(reweighted, cert),
               oic::PreconditionError);

  // A doctored hash is caught by the semantic re-check even when it
  // matches the model (the recorded hash is part of what verify trusts).
  PlantCertificate doctored = cert;
  doctored.model_hash ^= 0x1;
  EXPECT_THROW(oic::cert::verify(model, doctored), oic::NumericalError);
}

// ----------------------------------------------------------------- store

TEST(CertStore, LoadOrSynthesizeWithStaleAndCorruptRecovery) {
  const std::string dir = fresh_dir("store");
  const oic::cert::Store store(dir);
  const PlantModel model = ScenarioRegistry::builtin().make_model("toy2d");

  // Cold cache: miss, then get() synthesizes and persists.
  EXPECT_FALSE(store.load_if_fresh(model).has_value());
  const PlantCertificate first = store.get(model);
  EXPECT_TRUE(fs::exists(store.path_for(model)));
  ASSERT_TRUE(store.load_if_fresh(model).has_value());
  EXPECT_TRUE(bit_equal(first, *store.load_if_fresh(model)));

  // A changed model makes the cached file stale: the hit disappears and
  // get() transparently re-synthesizes + rewrites.
  PlantModel deeper = model;
  deeper.ladder_depth += 1;
  EXPECT_FALSE(store.load_if_fresh(deeper).has_value());
  const PlantCertificate rebuilt = store.get(deeper);
  EXPECT_EQ(rebuilt.model_hash, oic::cert::model_hash(deeper));
  EXPECT_TRUE(store.load_if_fresh(deeper).has_value());

  // Corrupt the file: load misses (no throw), get() recovers.
  {
    std::ofstream os(store.path_for(model));
    os << "oic-cert v1\nplant: toy2d\nmodel-hash: 0123456789abcdef\ngarbage";
  }
  EXPECT_FALSE(store.load_if_fresh(model).has_value());
  const PlantCertificate healed = store.get(model);
  EXPECT_TRUE(bit_equal(first, healed));

  const auto rows = store.ls();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].filename, "toy2d.cert");
  EXPECT_EQ(rows[0].plant, "toy2d");
  EXPECT_TRUE(rows[0].readable);
  fs::remove_all(dir);
}

TEST(CertStore, CachedPlantSweepsBitIdenticalToFreshSynthesis) {
  // The golden-load guarantee end to end: an oic_eval-style sweep through
  // cache-built plants must reproduce the fresh-synthesis sweep exactly --
  // on the cold pass (synthesize-and-write) and the warm pass (file load).
  const std::string dir = fresh_dir("golden");
  oic::eval::SweepSpec spec;
  spec.plants = {"toy2d"};
  spec.scenarios = {"sine"};
  spec.policies = {"bang-bang", "periodic-3"};
  spec.cases = 3;
  spec.steps = 30;
  spec.workers = 1;
  const auto& registry = ScenarioRegistry::builtin();
  const auto fresh = oic::eval::run_sweep(registry, spec);

  spec.cert_dir = dir;
  const auto cold = oic::eval::run_sweep(registry, spec);  // writes the cache
  const auto warm = oic::eval::run_sweep(registry, spec);  // loads it
  ASSERT_EQ(fresh.cells.size(), 1u);
  for (const auto* cached : {&cold, &warm}) {
    ASSERT_EQ(cached->cells.size(), 1u);
    EXPECT_EQ(fresh.cells[0].result.savings, cached->cells[0].result.savings);
    EXPECT_EQ(fresh.cells[0].result.mean_skipped,
              cached->cells[0].result.mean_skipped);
  }
  EXPECT_FALSE(cold.safety_violations);
  EXPECT_FALSE(warm.safety_violations);
  fs::remove_all(dir);
}

// ----------------------------------------------------------------- burst

oic::eval::PlantCase& shared_plant(const std::string& id) {
  static std::map<std::string, std::unique_ptr<oic::eval::PlantCase>> plants;
  auto it = plants.find(id);
  if (it == plants.end()) {
    it = plants.emplace(id, ScenarioRegistry::builtin().make_plant(id)).first;
  }
  return *it->second;
}

TEST(Burst, PolicySpecParsing) {
  const auto p = oic::eval::make_policy("burst:3");
  EXPECT_EQ(p->name(), "burst(3)");
  EXPECT_EQ(p->burst_depth(), 3u);
  EXPECT_EQ(oic::eval::make_policy("bang-bang")->burst_depth(), 0u);
  EXPECT_THROW(oic::eval::make_policy("burst:0"), oic::PreconditionError);
  EXPECT_THROW(oic::eval::make_policy("burst:x"), oic::PreconditionError);
  EXPECT_THROW(oic::eval::make_policy("burst:"), oic::PreconditionError);
  // Signed payloads must not wrap through strtoul into huge depths.
  EXPECT_THROW(oic::eval::make_policy("burst:-2"), oic::PreconditionError);
  EXPECT_THROW(oic::eval::make_policy("periodic--2"), oic::PreconditionError);
  EXPECT_THROW(oic::eval::make_policy("burst:3x"), oic::PreconditionError);
}

TEST(Burst, DepthOneMatchesBangBangBitwise) {
  // burst:1 certifies exactly one skip at a time -- the same decision
  // stream as bang-bang, so the paired savings must agree bit for bit.
  oic::eval::SweepSpec spec;
  spec.plants = {"toy2d"};
  spec.scenarios = {"sine", "white"};
  spec.policies = {"bang-bang", "burst:1"};
  spec.cases = 4;
  spec.steps = 50;
  spec.workers = 2;
  const auto result = oic::eval::run_sweep(ScenarioRegistry::builtin(), spec);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.result.savings[0], cell.result.savings[1]) << cell.scenario;
    EXPECT_EQ(cell.result.mean_skipped[0], cell.result.mean_skipped[1])
        << cell.scenario;
  }
  EXPECT_FALSE(result.safety_violations);
}

TEST(Burst, EngineMatchesHarnessUnderBurst) {
  auto& plant = shared_plant("toy2d");
  const auto scenario = ScenarioRegistry::builtin().make_scenario("toy2d", "white");
  Rng rng(777);
  oic::core::BurstSkipPolicy burst(3);
  oic::eval::EpisodeEngine engine(plant, burst);
  for (int c = 0; c < 2; ++c) {
    const auto data = oic::eval::make_case(plant, scenario, rng, 50);
    const auto legacy = oic::eval::run_episode(plant, burst, data);
    const auto fast = engine.run(data);
    EXPECT_DOUBLE_EQ(legacy.fuel, fast.fuel);
    EXPECT_EQ(legacy.skipped, fast.skipped);
    EXPECT_EQ(legacy.forced, fast.forced);
    EXPECT_EQ(legacy.left_x, fast.left_x);
    EXPECT_EQ(legacy.left_xi, fast.left_xi);
  }
}

TEST(Burst, CertifiedBurstsEngageAndNeverLeaveXi) {
  // Drive the monitor directly so the burst counters are observable: with
  // a depth-3 ladder the policy's skips must trigger multi-step bursts
  // (burst_steps > 0), every visited state must stay inside XI under
  // worst-case-ish random disturbances, and the monitor must keep running
  // the controller when needed after each burst ends.
  auto& plant = shared_plant("toy2d");
  ASSERT_GE(plant.ladder().size(), 3u);
  oic::core::BurstSkipPolicy policy(3);
  oic::control::TubeMpc rmpc(plant.rmpc());  // private copy
  oic::core::IntermittentController ic(
      plant.system(), plant.sets(), rmpc, policy,
      oic::eval::make_intermittent_config(plant, policy));

  Rng rng(4242);
  Vector x = plant.sample_x0(rng);
  Vector w(1);
  Vector x_next(2);
  const double w_max = 0.8;  // Toy2dParams default
  for (int t = 0; t < 120; ++t) {
    const auto d = ic.decide(x);
    w[0] = rng.uniform(-w_max, w_max);
    plant.system().step_into(x, d.u, w, x_next);
    ic.record_transition(x, d.u, x_next);
    EXPECT_TRUE(plant.sets().xi.contains(x_next, 1e-6)) << "step " << t;
    x = x_next;
  }
  EXPECT_GT(ic.burst_steps(), 0u);
  EXPECT_GE(ic.skipped_steps(), ic.burst_steps());
  // reset() abandons any in-flight burst.
  ic.reset();
  EXPECT_EQ(ic.burst_remaining(), 0u);
}

TEST(Burst, ControllerRejectsBurstWithoutLadder) {
  auto& plant = shared_plant("toy2d");
  oic::core::BurstSkipPolicy policy(2);
  oic::control::TubeMpc rmpc(plant.rmpc());
  oic::core::IntermittentConfig icfg;
  icfg.u_skip = plant.u_skip();
  icfg.burst_depth = 2;  // but no ladder supplied
  EXPECT_THROW(oic::core::IntermittentController(plant.system(), plant.sets(), rmpc,
                                                 policy, icfg),
               oic::PreconditionError);
}

TEST(Burst, ControllerValidatesUncertifiedLadders) {
  // A hand-assembled (uncertified) ladder whose base is NOT inside X' must
  // be rejected by the constructor's LP re-check; the same ladder flagged
  // ladder_certified skips that check (the certificate layer's job).
  auto& plant = shared_plant("toy2d");
  oic::core::BurstSkipPolicy policy(1);
  oic::control::TubeMpc rmpc(plant.rmpc());
  oic::core::IntermittentConfig icfg;
  icfg.u_skip = plant.u_skip();
  icfg.burst_depth = 1;
  icfg.ladder = {plant.sets().x};  // the full safe set: not inside X'
  EXPECT_THROW(oic::core::IntermittentController(plant.system(), plant.sets(), rmpc,
                                                 policy, icfg),
               oic::PreconditionError);
}

// ------------------------------------------------------------- scenario

TEST(Scenario, CopyingDefaultConstructedDoesNotCrash) {
  // Regression: the copy constructor used to dereference other.profile
  // unconditionally, so copying a default-constructed Scenario segfaulted.
  oic::eval::Scenario empty;
  oic::eval::Scenario copy(empty);
  EXPECT_EQ(copy.profile, nullptr);
  EXPECT_TRUE(copy.id.empty());

  oic::eval::Scenario assigned;
  assigned = empty;
  EXPECT_EQ(assigned.profile, nullptr);

  // Copies of a real scenario still deep-clone the profile.
  const auto real = ScenarioRegistry::builtin().make_scenario("toy2d", "sine");
  oic::eval::Scenario real_copy(real);
  ASSERT_NE(real_copy.profile, nullptr);
  EXPECT_NE(real_copy.profile.get(), real.profile.get());
  // And assigning an empty one over it null-propagates rather than crashing.
  real_copy = empty;
  EXPECT_EQ(real_copy.profile, nullptr);
}

}  // namespace
