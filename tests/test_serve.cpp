// Tests for the monitor service stack (src/serve): the `oic-serve v1`
// wire grammar, the multi-session Service, the threaded Server, and the
// headline guarantee of the serve layer -- batched decisions bit-identical
// to the per-session EpisodeEngine/IntermittentController path.
//
// The parser corpus follows the PR-5 parser-fuzz discipline
// (tests/test_parser_fuzz.cpp): the request stream crosses a trust
// boundary (oic_serve --in reads arbitrary files / stdin), so truncation,
// non-finite numbers, oversized counts and dimensions, unknown verbs, and
// trailing junk must all reject with a clean oic::Error -- never crash,
// hang, or allocate unboundedly.

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "eval/registry.hpp"
#include "rl/serialize.hpp"
#include "serve/api.hpp"
#include "serve/loadgen.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using oic::Rng;
using oic::serve::Request;
using oic::serve::Response;

// ---------------------------------------------------------------- helpers

Request open_req(std::uint64_t ref, std::uint64_t sid, std::string plant,
                 std::string policy) {
  Request r;
  r.kind = Request::Kind::kOpen;
  r.ref = ref;
  r.session = sid;
  r.plant = std::move(plant);
  r.policy = std::move(policy);
  return r;
}

Request decide_req(std::uint64_t ref, std::uint64_t sid,
                   const std::vector<double>& x) {
  Request r;
  r.kind = Request::Kind::kDecide;
  r.ref = ref;
  r.session = sid;
  r.x.data() = x;
  return r;
}

Request decide_req(std::uint64_t ref, std::uint64_t sid,
                   const std::vector<double>& u, const std::vector<double>& x) {
  Request r = decide_req(ref, sid, x);
  r.has_u = true;
  r.u.data() = u;
  return r;
}

Request close_req(std::uint64_t ref, std::uint64_t sid) {
  Request r;
  r.kind = Request::Kind::kClose;
  r.ref = ref;
  r.session = sid;
  return r;
}

Request reload_req(std::uint64_t ref) {
  Request r;
  r.kind = Request::Kind::kReload;
  r.ref = ref;
  return r;
}

/// A valid request document covering every verb and both decide shapes,
/// with doubles chosen to stress the shortest-round-trip (to_chars)
/// encoding.
std::string request_doc() {
  std::vector<Request> batch;
  batch.push_back(open_req(1, 7, "toy2d", "bang-bang"));
  batch.push_back(decide_req(2, 7, {0.1, -1.0 / 3.0}));
  batch.push_back(decide_req(3, 7, {-2.5e-13}, {1e-300, 4.9406564584124654e-324}));
  batch.push_back(close_req(4, 7));
  batch.push_back(reload_req(5));
  std::stringstream ss;
  oic::serve::write_request_batch(batch, ss);
  return ss.str();
}

std::string response_doc() {
  std::vector<Response> batch(5);
  batch[0].kind = Response::Kind::kOpened;
  batch[0].ref = 1;
  batch[0].session = 7;
  batch[1].kind = Response::Kind::kDecision;
  batch[1].ref = 2;
  batch[1].session = 7;
  batch[1].z = 0;
  batch[1].forced = false;
  batch[2].kind = Response::Kind::kClosed;
  batch[2].ref = 4;
  batch[2].session = 7;
  batch[3].kind = Response::Kind::kReloaded;
  batch[3].ref = 5;
  batch[3].certs = 2;
  batch[3].agents = 1;
  batch[4].kind = Response::Kind::kError;
  batch[4].ref = 6;
  batch[4].error = "unknown session 9 (several words, echoed verbatim)";
  std::stringstream ss;
  oic::serve::write_response_batch(batch, ss);
  return ss.str();
}

void expect_request_rejects(const std::string& text, const std::string& why) {
  std::stringstream ss(text);
  std::vector<Request> out;
  EXPECT_THROW(oic::serve::read_request_batch(ss, out), oic::Error) << why;
}

void expect_response_rejects(const std::string& text, const std::string& why) {
  std::stringstream ss(text);
  std::vector<Response> out;
  EXPECT_THROW(oic::serve::read_response_batch(ss, out), oic::Error) << why;
}

/// Write a deterministic toy2d skipping agent (memory 2, so state_dim =
/// nx + 2*nx = 6) and return its path.  `seed` varies the weights so
/// hot-reload tests can produce a genuinely different network.
std::string write_toy2d_agent(const std::string& name, unsigned seed) {
  Rng rng(seed);
  oic::linalg::Vector scale(6);
  for (std::size_t i = 0; i < 6; ++i) scale[i] = 0.5 + 0.1 * static_cast<double>(i);
  oic::rl::AgentSnapshot snap{"toy2d", 2, std::move(scale),
                              oic::rl::Mlp({6, 8, 2}, rng)};
  const std::string path = ::testing::TempDir() + name;
  oic::rl::save_agent_file(snap, path);
  return path;
}

// ---------------------------------------------------------- wire grammar

TEST(ServeApi, RequestRoundTripIsExact) {
  const std::string doc = request_doc();
  std::stringstream ss(doc);
  std::vector<Request> got;
  ASSERT_TRUE(oic::serve::read_request_batch(ss, got));
  ASSERT_EQ(got.size(), 5u);

  EXPECT_EQ(got[0].kind, Request::Kind::kOpen);
  EXPECT_EQ(got[0].ref, 1u);
  EXPECT_EQ(got[0].session, 7u);
  EXPECT_EQ(got[0].plant, "toy2d");
  EXPECT_EQ(got[0].policy, "bang-bang");

  EXPECT_EQ(got[1].kind, Request::Kind::kDecide);
  EXPECT_FALSE(got[1].has_u);
  ASSERT_EQ(got[1].x.size(), 2u);
  // Shortest-round-trip to_chars recovers doubles exactly, including
  // subnormals.
  EXPECT_EQ(got[1].x[0], 0.1);
  EXPECT_EQ(got[1].x[1], -1.0 / 3.0);

  EXPECT_EQ(got[2].kind, Request::Kind::kDecide);
  ASSERT_TRUE(got[2].has_u);
  ASSERT_EQ(got[2].u.size(), 1u);
  EXPECT_EQ(got[2].u[0], -2.5e-13);
  ASSERT_EQ(got[2].x.size(), 2u);
  EXPECT_EQ(got[2].x[0], 1e-300);
  EXPECT_EQ(got[2].x[1], 4.9406564584124654e-324);

  EXPECT_EQ(got[3].kind, Request::Kind::kClose);
  EXPECT_EQ(got[3].session, 7u);
  EXPECT_EQ(got[4].kind, Request::Kind::kReload);
  EXPECT_EQ(got[4].ref, 5u);

  // Nothing further in the stream: the next read is a clean EOF.
  std::vector<Request> more;
  EXPECT_FALSE(oic::serve::read_request_batch(ss, more));
}

TEST(ServeApi, ResponseRoundTripIsExact) {
  std::stringstream ss(response_doc());
  std::vector<Response> got;
  ASSERT_TRUE(oic::serve::read_response_batch(ss, got));
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].kind, Response::Kind::kOpened);
  EXPECT_EQ(got[1].kind, Response::Kind::kDecision);
  EXPECT_EQ(got[1].z, 0);
  EXPECT_FALSE(got[1].forced);
  EXPECT_EQ(got[2].kind, Response::Kind::kClosed);
  EXPECT_EQ(got[3].kind, Response::Kind::kReloaded);
  EXPECT_EQ(got[3].certs, 2u);
  EXPECT_EQ(got[3].agents, 1u);
  EXPECT_EQ(got[4].kind, Response::Kind::kError);
  EXPECT_EQ(got[4].error, "unknown session 9 (several words, echoed verbatim)");
}

TEST(ServeApi, ErrorNewlinesAreSanitized) {
  // A diagnostic with embedded newlines must not forge extra response
  // lines (the grammar is line-framed).
  std::vector<Response> batch(1);
  batch[0].kind = Response::Kind::kError;
  batch[0].ref = 9;
  batch[0].error = "line one\nclosed 1 session 2\rline three";
  std::stringstream ss;
  oic::serve::write_response_batch(batch, ss);
  std::vector<Response> got;
  ASSERT_TRUE(oic::serve::read_response_batch(ss, got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].error, "line one closed 1 session 2 line three");
}

TEST(ServeApi, CleanEofIsFalseNotError) {
  for (const char* text : {"", "\n", "\n\n\n"}) {
    std::stringstream ss(text);
    std::vector<Request> reqs;
    EXPECT_FALSE(oic::serve::read_request_batch(ss, reqs)) << '"' << text << '"';
    std::stringstream ss2(text);
    std::vector<Response> resps;
    EXPECT_FALSE(oic::serve::read_response_batch(ss2, resps));
  }
}

TEST(ServeApi, BackToBackBatchesStream) {
  // Batches separated by blank lines stream one document at a time --
  // the oic_serve lock-step loop relies on this.
  std::stringstream ss(request_doc() + "\n" + request_doc());
  std::vector<Request> out;
  ASSERT_TRUE(oic::serve::read_request_batch(ss, out));
  EXPECT_EQ(out.size(), 5u);
  ASSERT_TRUE(oic::serve::read_request_batch(ss, out));
  EXPECT_EQ(out.size(), 5u);
  EXPECT_FALSE(oic::serve::read_request_batch(ss, out));
}

TEST(ServeApiFuzz, EveryTruncationRejects) {
  // Any cut that loses part of the end sentinel (or anything before it)
  // must reject; cut 0 is a clean EOF and returns false instead.
  const std::string doc = request_doc();
  const std::size_t sentinel_end = doc.rfind("end") + 3;
  for (std::size_t cut = 1; cut < sentinel_end; ++cut) {
    expect_request_rejects(doc.substr(0, cut),
                           "request cut at " + std::to_string(cut));
  }
  const std::string resp = response_doc();
  const std::size_t resp_end = resp.rfind("end") + 3;
  for (std::size_t cut = 1; cut < resp_end; ++cut) {
    expect_response_rejects(resp.substr(0, cut),
                            "response cut at " + std::to_string(cut));
  }
}

TEST(ServeApiFuzz, HeaderMutationsReject) {
  expect_request_rejects("oic-serve v2\nrequests 0\nend\n", "future version");
  expect_request_rejects("oic-cert v1\nrequests 0\nend\n", "wrong magic");
  expect_request_rejects("garbage\n", "non-magic first line");
  expect_request_rejects("oic-serve v1\n", "missing count line");
  expect_request_rejects("oic-serve v1\nresponses 0\nend\n",
                         "wrong direction keyword");
  expect_request_rejects("oic-serve v1\nrequests\nend\n", "missing count");
  expect_request_rejects("oic-serve v1\nrequests -1\nend\n", "negative count");
  expect_request_rejects("oic-serve v1\nrequests x\nend\n", "non-numeric count");
  expect_request_rejects("oic-serve v1\nrequests 3.5\nend\n", "fractional count");
  expect_request_rejects("oic-serve v1\nrequests 0 junk\nend\n",
                         "trailing token after count");
  // The caps must reject before any allocation happens (allocation bombs).
  expect_request_rejects("oic-serve v1\nrequests 1048577\nend\n",
                         "count over the 1<<20 cap");
  expect_request_rejects("oic-serve v1\nrequests 99999999999999999999\nend\n",
                         "count overflowing u64");
}

TEST(ServeApiFuzz, RequestLineMutationsReject) {
  const std::string head = "oic-serve v1\nrequests 1\n";
  expect_request_rejects(head + "\nend\n", "blank request line");
  expect_request_rejects(head + "ping 1\nend\n", "unknown verb");
  expect_request_rejects(head + "open 1 session 2 plant toy2d\nend\n",
                         "open missing policy");
  expect_request_rejects(head + "open 1 sess 2 plant toy2d policy bang-bang\nend\n",
                         "misspelled keyword");
  expect_request_rejects(
      head + "open 1 session 2 plant toy2d policy bang-bang junk\nend\n",
      "trailing token on open");
  expect_request_rejects(head + "open -1 session 2 plant a policy b\nend\n",
                         "negative ref");
  expect_request_rejects(head + "close 1 session 2 3\nend\n",
                         "trailing token on close");
  expect_request_rejects(head + "reload 1 2\nend\n", "trailing token on reload");
  expect_request_rejects(head + "decide 1 session 2\nend\n",
                         "decide without a state vector");
  expect_request_rejects(head + "decide 1 session 2 y 1 0.5\nend\n",
                         "decide with an unknown tag");
  const std::string doc = request_doc();
  expect_request_rejects(doc.substr(0, doc.size() - 4) + "fin\n",
                         "wrong end sentinel");
}

TEST(ServeApiFuzz, VectorMutationsReject) {
  const std::string head = "oic-serve v1\nrequests 1\n";
  expect_request_rejects(head + "decide 1 session 2 x 0\nend\n", "zero dimension");
  expect_request_rejects(head + "decide 1 session 2 x 65 0.0\nend\n",
                         "dimension over the cap of 64");
  expect_request_rejects(
      head + "decide 1 session 2 x 18446744073709551616 0.0\nend\n",
      "dimension overflowing u64");
  expect_request_rejects(head + "decide 1 session 2 x 3 0.5 0.5\nend\n",
                         "fewer values than the declared dimension");
  expect_request_rejects(head + "decide 1 session 2 x 1 0.5 0.5\nend\n",
                         "more values than the declared dimension");
  for (const char* bad : {"nan", "-nan", "inf", "-inf", "1e999", "-1e999", "zero"}) {
    expect_request_rejects(
        head + "decide 1 session 2 x 2 0.5 " + std::string(bad) + "\nend\n",
        std::string("non-finite state entry '") + bad + "'");
    expect_request_rejects(head + "decide 1 session 2 u 1 " + std::string(bad) +
                               " x 1 0.0\nend\n",
                           std::string("non-finite input entry '") + bad + "'");
  }
}

TEST(ServeApiFuzz, ResponseMutationsReject) {
  const std::string head = "oic-serve v1\nresponses 1\n";
  expect_response_rejects(head + "decision 1 session 2 z 2 forced 0\nend\n",
                          "z outside {0,1}");
  expect_response_rejects(head + "decision 1 session 2 z 0 forced 7\nend\n",
                          "forced outside {0,1}");
  expect_response_rejects(head + "decision 1 session 2 z 0\nend\n",
                          "decision missing forced");
  expect_response_rejects(head + "reloaded 1 certs 2\nend\n",
                          "reloaded missing agents");
  expect_response_rejects(head + "opened 1 session 2 junk\nend\n",
                          "trailing token on opened");
  expect_response_rejects(head + "pong 1\nend\n", "unknown response verb");
  expect_response_rejects("oic-serve v1\nrequests 0\nend\n",
                          "request header on the response reader");
}

TEST(ServeApi, WriterEnforcesTheGrammar) {
  // Writers reject what readers would reject, so a bad batch fails at
  // save time instead of corrupting the line grammar.
  std::stringstream ss;
  std::vector<Request> bad_policy{open_req(1, 2, "toy2d", "bang bang")};
  EXPECT_THROW(oic::serve::write_request_batch(bad_policy, ss), oic::Error);
  std::vector<Request> empty_plant{open_req(1, 2, "", "bang-bang")};
  EXPECT_THROW(oic::serve::write_request_batch(empty_plant, ss), oic::Error);
  std::vector<Request> empty_x{decide_req(1, 2, {})};
  EXPECT_THROW(oic::serve::write_request_batch(empty_x, ss), oic::Error);
  std::vector<Request> huge_x{decide_req(1, 2, std::vector<double>(65, 0.0))};
  EXPECT_THROW(oic::serve::write_request_batch(huge_x, ss), oic::Error);
}

// A pathological streambuf that surfaces one byte per underflow and never
// reports readahead (in_avail() == 0), forcing the stateful readers down
// their slow refill path on every byte -- lines split across arbitrarily
// many refills, exactly what a trickling socket produces.
class DripBuf final : public std::streambuf {
 public:
  explicit DripBuf(std::string data) : data_(std::move(data)) {}

 private:
  int_type underflow() override {
    if (pos_ >= data_.size()) return traits_type::eof();
    ch_ = data_[pos_++];
    setg(&ch_, &ch_, &ch_ + 1);
    return traits_type::to_int_type(ch_);
  }
  std::string data_;
  std::size_t pos_ = 0;
  char ch_ = 0;
};

TEST(ServeApi, StatefulReadersMatchOneShotAcrossChunkedArrival) {
  // RequestReader/ResponseReader block-buffer the stream themselves; they
  // must parse identically to the one-shot istream functions whether bytes
  // arrive in one block (stringbuf) or one at a time (DripBuf), across
  // several back-to-back batches, ending in false at clean EOF.
  const std::string reqs = request_doc() + request_doc() + request_doc();
  const auto parse_requests = [](std::streambuf* sb) {
    std::istream is(sb);
    oic::serve::RequestReader reader(is);
    std::ostringstream os;
    std::vector<Request> batch;
    std::size_t batches = 0;
    while (reader.read(batch)) {
      oic::serve::write_request_batch(batch, os);
      ++batches;
    }
    EXPECT_EQ(batches, 3u);
    return os.str();
  };
  std::stringbuf block_rq(reqs);
  DripBuf drip_rq(reqs);
  EXPECT_EQ(parse_requests(&block_rq), reqs);
  EXPECT_EQ(parse_requests(&drip_rq), reqs);

  const std::string resps = response_doc() + response_doc();
  const auto parse_responses = [](std::streambuf* sb) {
    std::istream is(sb);
    oic::serve::ResponseReader reader(is);
    std::ostringstream os;
    std::vector<Response> batch;
    while (reader.read(batch)) oic::serve::write_response_batch(batch, os);
    return os.str();
  };
  std::stringbuf block_rs(resps);
  DripBuf drip_rs(resps);
  EXPECT_EQ(parse_responses(&block_rs), resps);
  EXPECT_EQ(parse_responses(&drip_rs), resps);

  // Strictness carries over: a truncated document throws, it never
  // silently returns false.
  const std::string cut = reqs.substr(0, reqs.size() / 2);
  DripBuf drip_cut(cut);
  std::istream is(&drip_cut);
  oic::serve::RequestReader reader(is);
  std::vector<Request> batch;
  ASSERT_TRUE(reader.read(batch));
  EXPECT_THROW(
      {
        while (reader.read(batch)) {
        }
      },
      oic::Error);
}

// -------------------------------------------------------------- service

TEST(ServeService, SessionLifecycleAndValidation) {
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  const auto model = reg.make_model("toy2d");
  const std::size_t nx = model.sys.nx();
  const std::size_t nu = model.sys.nu();
  const std::vector<double> x0(nx, 0.0);
  const std::vector<double> u0(nu, 0.0);

  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Service svc(reg, cfg);

  // Open + first decide (state only) in one batch, request order.
  std::vector<Request> batch;
  batch.push_back(open_req(1, 10, "toy2d", "bang-bang"));
  batch.push_back(decide_req(2, 10, x0));
  std::vector<Response> out;
  svc.serve(batch, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, Response::Kind::kOpened);
  ASSERT_EQ(out[1].kind, Response::Kind::kDecision) << out[1].error;
  EXPECT_EQ(out[1].ref, 2u);
  EXPECT_EQ(svc.open_sessions(), 1u);

  // Validation corpus: every row is (requests, why) answered with kError.
  struct Case {
    Request req;
    const char* why;
  };
  std::vector<Case> cases;
  cases.push_back({open_req(3, 10, "toy2d", "bang-bang"), "duplicate open"});
  cases.push_back({open_req(4, 11, "nonesuch", "bang-bang"), "unknown plant"});
  cases.push_back({open_req(5, 11, "toy2d", "periodic-0"), "malformed policy"});
  cases.push_back({open_req(6, 11, "toy2d", "burst:0"), "malformed burst"});
  cases.push_back({decide_req(7, 99, x0), "unknown session"});
  cases.push_back({decide_req(8, 10, x0), "subsequent decide without u"});
  cases.push_back(
      {decide_req(9, 10, u0, std::vector<double>(nx + 1, 0.0)), "wrong x dim"});
  cases.push_back(
      {decide_req(10, 10, std::vector<double>(nu + 1, 0.0), x0), "wrong u dim"});
  cases.push_back({close_req(11, 99), "close of an unknown session"});
  for (const Case& c : cases) {
    svc.serve({c.req}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, Response::Kind::kError) << c.why;
    EXPECT_EQ(out[0].ref, c.req.ref) << c.why;
    EXPECT_FALSE(out[0].error.empty()) << c.why;
  }
  // None of the failed requests disturbed the session table.
  EXPECT_EQ(svc.open_sessions(), 1u);

  // A session may decide at most once per batch (one tick = one period).
  batch.clear();
  batch.push_back(decide_req(12, 10, u0, x0));
  batch.push_back(decide_req(13, 10, u0, x0));
  svc.serve(batch, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, Response::Kind::kDecision) << out[0].error;
  EXPECT_EQ(out[1].kind, Response::Kind::kError);

  // First decide of a session must not carry u (there is no previous
  // actuation to reconstruct a disturbance from).
  svc.serve({open_req(14, 20, "toy2d", "always-run"), decide_req(15, 20, u0, x0)},
            out);
  EXPECT_EQ(out[0].kind, Response::Kind::kOpened);
  EXPECT_EQ(out[1].kind, Response::Kind::kError);

  // Close ends the session; decides after it are unknown-session errors.
  svc.serve({close_req(16, 10)}, out);
  EXPECT_EQ(out[0].kind, Response::Kind::kClosed);
  svc.serve({decide_req(17, 10, u0, x0)}, out);
  EXPECT_EQ(out[0].kind, Response::Kind::kError);

  // Reload with no cert store and no DRL groups swaps nothing.
  svc.serve({reload_req(18)}, out);
  ASSERT_EQ(out[0].kind, Response::Kind::kReloaded);
  EXPECT_EQ(out[0].certs, 0u);
  EXPECT_EQ(out[0].agents, 0u);

  const auto& c = svc.counters();
  EXPECT_GE(c.decisions, 2u);
  EXPECT_GE(c.errors, cases.size());
  EXPECT_EQ(c.reloads, 1u);
  EXPECT_EQ(c.invariant_errors, 0u);
}

TEST(ServeService, DecideThenCloseInOneBatchFailsTheDecide) {
  // Regression: a decide queued in phase 1 used to survive a close of the
  // same session later in the batch, so phase 2 looked up the erased
  // session (std::out_of_range escaping serve(), killing the tick thread).
  // The close must instead fail the stale pending decide.  Exercised for
  // every policy kind that touches the session table in phase 2.
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  const std::string agent = write_toy2d_agent("close_race.agent", 41);
  const std::vector<std::string> policies{"bang-bang", "periodic-2",
                                          "drl:" + agent};
  for (const std::string& policy : policies) {
    oic::serve::ServiceConfig cfg;
    cfg.workers = 1;
    oic::serve::Service svc(reg, cfg);
    std::vector<Response> out;
    svc.serve({open_req(1, 3, "toy2d", policy), decide_req(2, 3, {0.0, 0.0}),
               close_req(3, 3)},
              out);
    ASSERT_EQ(out.size(), 3u) << policy;
    EXPECT_EQ(out[0].kind, Response::Kind::kOpened) << policy << out[0].error;
    ASSERT_EQ(out[1].kind, Response::Kind::kError) << policy;
    EXPECT_NE(out[1].error.find("closed later in the same batch"),
              std::string::npos)
        << policy << ": " << out[1].error;
    EXPECT_EQ(out[2].kind, Response::Kind::kClosed) << policy;
    EXPECT_EQ(svc.open_sessions(), 0u) << policy;
  }
}

TEST(ServeService, CloseReopenInOneBatchStartsFresh) {
  // Regression companion: close + reopen of the same id in one batch must
  // not leak the pre-close pending decide into the fresh session.  The
  // stale decide fails at the close; the reopened session is unseeded, so
  // its first decide (state only) succeeds.
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Service svc(reg, cfg);
  std::vector<Response> out;
  svc.serve({open_req(1, 8, "toy2d", "bang-bang"), decide_req(2, 8, {0.0, 0.0})},
            out);
  ASSERT_EQ(out[1].kind, Response::Kind::kDecision) << out[1].error;

  svc.serve({decide_req(3, 8, {0.0}, {0.0, 0.0}), close_req(4, 8),
             open_req(5, 8, "toy2d", "bang-bang"), decide_req(6, 8, {0.0, 0.0})},
            out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].kind, Response::Kind::kError);
  EXPECT_EQ(out[1].kind, Response::Kind::kClosed);
  EXPECT_EQ(out[2].kind, Response::Kind::kOpened) << out[2].error;
  EXPECT_EQ(out[3].kind, Response::Kind::kDecision) << out[3].error;
  EXPECT_EQ(svc.open_sessions(), 1u);
}

TEST(ServeService, SessionTableCapIsEnforced) {
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_sessions = 1;
  oic::serve::Service svc(oic::eval::ScenarioRegistry::builtin(), cfg);
  std::vector<Response> out;
  svc.serve({open_req(1, 1, "toy2d", "bang-bang"),
             open_req(2, 2, "toy2d", "bang-bang")},
            out);
  EXPECT_EQ(out[0].kind, Response::Kind::kOpened);
  EXPECT_EQ(out[1].kind, Response::Kind::kError);
  EXPECT_NE(out[1].error.find("full"), std::string::npos);
}

TEST(ServeService, DrlOpenValidatesTheAgent) {
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Service svc(reg, cfg);
  std::vector<Response> out;

  // Missing file.
  svc.serve({open_req(1, 1, "toy2d", "drl:" + ::testing::TempDir() + "nope.agent")},
            out);
  EXPECT_EQ(out[0].kind, Response::Kind::kError);

  // Plant-tag mismatch: a toy2d-shaped agent labelled for another plant.
  Rng rng(3);
  oic::rl::AgentSnapshot wrong{"acc", 2, oic::linalg::Vector(),
                               oic::rl::Mlp({6, 8, 2}, rng)};
  const std::string wrong_path = ::testing::TempDir() + "wrong_plant.agent";
  oic::rl::save_agent_file(wrong, wrong_path);
  svc.serve({open_req(2, 1, "toy2d", "drl:" + wrong_path)}, out);
  ASSERT_EQ(out[0].kind, Response::Kind::kError);
  EXPECT_NE(out[0].error.find("trained on plant"), std::string::npos);

  // Dimension mismatch: state_dim does not decompose over toy2d's nx.
  oic::rl::AgentSnapshot misfit{"toy2d", 2, oic::linalg::Vector(),
                                oic::rl::Mlp({9, 8, 2}, rng)};
  const std::string misfit_path = ::testing::TempDir() + "misfit.agent";
  oic::rl::save_agent_file(misfit, misfit_path);
  svc.serve({open_req(3, 1, "toy2d", "drl:" + misfit_path)}, out);
  ASSERT_EQ(out[0].kind, Response::Kind::kError);
  EXPECT_NE(out[0].error.find("do not fit"), std::string::npos);

  // A well-formed agent opens and decides.
  const std::string good = write_toy2d_agent("good.agent", 17);
  svc.serve({open_req(4, 1, "toy2d", "drl:" + good),
             decide_req(5, 1, std::vector<double>(2, 0.0))},
            out);
  EXPECT_EQ(out[0].kind, Response::Kind::kOpened) << out[0].error;
  EXPECT_EQ(out[1].kind, Response::Kind::kDecision) << out[1].error;
}

TEST(ServeService, AgentHotReloadSwapsWithoutDroppingSessions) {
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  const std::string path = write_toy2d_agent("hot.agent", 21);
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Service svc(reg, cfg);
  std::vector<Response> out;
  svc.serve({open_req(1, 5, "toy2d", "drl:" + path),
             decide_req(2, 5, std::vector<double>(2, 0.0))},
            out);
  ASSERT_EQ(out[1].kind, Response::Kind::kDecision) << out[1].error;

  // Rewriting the file with identical parameters must NOT count as a swap
  // (the bit-equality guard).
  write_toy2d_agent("hot.agent", 21);
  svc.serve({reload_req(3)}, out);
  ASSERT_EQ(out[0].kind, Response::Kind::kReloaded);
  EXPECT_EQ(out[0].agents, 0u);

  // Different weights swap in; the open session keeps its state.
  write_toy2d_agent("hot.agent", 22);
  svc.serve({reload_req(4)}, out);
  ASSERT_EQ(out[0].kind, Response::Kind::kReloaded);
  EXPECT_EQ(out[0].agents, 1u);
  EXPECT_EQ(svc.open_sessions(), 1u);
  svc.serve({decide_req(5, 5, std::vector<double>(1, 0.0),
                        std::vector<double>(2, 0.0))},
            out);
  EXPECT_EQ(out[0].kind, Response::Kind::kDecision) << out[0].error;

  // A corrupt rewrite keeps the old agent serving.
  {
    std::ofstream os(path);
    os << "oic-agent v1\ngarbage\n";
  }
  svc.serve({reload_req(6)}, out);
  ASSERT_EQ(out[0].kind, Response::Kind::kReloaded);
  EXPECT_EQ(out[0].agents, 0u);
  svc.serve({decide_req(7, 5, std::vector<double>(1, 0.0),
                        std::vector<double>(2, 0.0))},
            out);
  EXPECT_EQ(out[0].kind, Response::Kind::kDecision) << out[0].error;
}

// ------------------------------------------------------------ bit parity

TEST(ServeParity, BatchedDecisionsMatchPerSessionPath) {
  // The serve layer's headline guarantee: interleaved batched sessions
  // reproduce the per-session IntermittentController decision stream --
  // z, forced, the actuated input, and the state trajectory, all bitwise.
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  const std::string agent = write_toy2d_agent("parity.agent", 31);
  const oic::serve::ParityReport report = oic::serve::check_batched_parity(
      reg, "toy2d", {"bang-bang", "periodic-3", "always-run", "drl:" + agent},
      12, 30, 99);
  EXPECT_TRUE(report.identical) << report.detail;
  EXPECT_EQ(report.decisions, 12u * 30u);
}

TEST(ServeParity, ParityHoldsAcrossWorkerCounts) {
  // The batched membership checks chunk over a thread pool; the chunking
  // must not change a single bit of any decision.
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  const oic::serve::ParityReport report = oic::serve::check_batched_parity(
      reg, "toy2d", {"bang-bang", "periodic-2"}, 9, 15, 7);
  EXPECT_TRUE(report.identical) << report.detail;
  EXPECT_EQ(report.decisions, 9u * 15u);
}

TEST(ServeParity, BurstSessionsMatchPerSessionBurstMode) {
  // burst:<k> serve sessions answer k-1 decides per burst from a certified
  // countdown without a group batch row; the stream must still be
  // bit-identical to the per-session IntermittentController burst branch.
  // Mixed with every other policy kind so burst groups shard a tick
  // alongside non-burst groups.
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  const std::string agent = write_toy2d_agent("burst_parity.agent", 37);
  const oic::serve::ParityReport report = oic::serve::check_batched_parity(
      reg, "toy2d",
      {"burst:4", "burst:2", "bang-bang", "periodic-3", "always-run",
       "drl:" + agent},
      12, 40, 123);
  EXPECT_TRUE(report.identical) << report.detail;
  EXPECT_EQ(report.decisions, 12u * 40u);
}

TEST(ServeParity, TickOutputByteIdenticalAcrossTickWorkerCounts) {
  // The sharded parallel tick must be invisible in the output: replaying
  // one recorded request stream through services with 1, 2, and 4 tick
  // workers yields byte-identical response streams.  The policy mix spans
  // three (plant, cert, policy) groups so the 2- and 4-worker runs really
  // do serve groups concurrently.
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  const std::string reqs = ::testing::TempDir() + "tick_sweep.reqs";
  {
    oic::serve::ServiceConfig scfg;
    scfg.workers = 1;
    oic::serve::Server server(reg, scfg);
    oic::serve::LoadgenConfig lc;
    lc.plants = {"toy2d"};
    lc.policy = "bang-bang,burst:3,periodic-2";
    lc.sessions = 24;
    lc.steps = 12;
    lc.clients = 1;  // one client + lock-step window = deterministic capture
    lc.pipeline_window = 1;
    lc.max_batch = 8;
    lc.emit_path = reqs;
    const oic::serve::LoadgenResult res = oic::serve::run_loadgen(server, reg, lc);
    ASSERT_EQ(res.errors, 0u);
    ASSERT_GT(res.burst_sessions, 0u);
  }
  const auto replay = [&](std::size_t tick_workers) {
    oic::serve::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.tick_workers = tick_workers;
    oic::serve::Service svc(reg, cfg);
    std::ifstream in(reqs);
    oic::serve::RequestReader reader(in);
    std::ostringstream os;
    std::vector<Request> batch;
    std::vector<Response> out;
    while (reader.read(batch)) {
      svc.serve(batch, out);
      oic::serve::write_response_batch(out, os);
    }
    return os.str();
  };
  const std::string w1 = replay(1);
  ASSERT_FALSE(w1.empty());
  EXPECT_EQ(w1, replay(2));
  EXPECT_EQ(w1, replay(4));
}

// --------------------------------------------------------------- server

TEST(ServeQueue, PopNLeavesQueueAndOutIntactWhenClosedShort) {
  // pop_n used to move a partial prefix into `out` before noticing the
  // channel closed short of n, silently losing those items to an await()
  // that throws.  On failure it must now leave both the queue and `out`
  // untouched so the remainder is still drainable.
  oic::serve::Channel<int> ch;
  ch.push(1);
  ch.push(2);
  ch.close();
  std::vector<int> out;
  EXPECT_FALSE(ch.pop_n(3, out));
  EXPECT_TRUE(out.empty());
  std::vector<int> rest;
  ASSERT_TRUE(ch.drain(rest));
  EXPECT_EQ(rest, (std::vector<int>{1, 2}));
  // Exactly-n still delivers, appending to existing contents.
  oic::serve::Channel<int> ch2;
  ch2.push(7);
  ch2.close();
  std::vector<int> out2{5};
  EXPECT_TRUE(ch2.pop_n(1, out2));
  EXPECT_EQ(out2, (std::vector<int>{5, 7}));
}

TEST(ServeQueue, DrainForDeliversTimesOutAndDrainsClosed) {
  // The tick thread idles on drain_for instead of spinning: nothing
  // pending -> kTimeout at the cadence bound; pending items win over both
  // the deadline and closure; a closed channel drains fully before
  // reporting kClosed.
  using oic::serve::DrainStatus;
  oic::serve::Channel<int> ch;
  std::vector<int> out{9};
  EXPECT_EQ(ch.drain_for(out, std::chrono::milliseconds(1)),
            DrainStatus::kTimeout);
  EXPECT_TRUE(out.empty());  // drain_for clears `out` like drain()
  ch.push(1);
  EXPECT_EQ(ch.drain_for(out, std::chrono::milliseconds(0)),
            DrainStatus::kItems);
  EXPECT_EQ(out, (std::vector<int>{1}));
  ch.push(2);
  ch.close();
  EXPECT_EQ(ch.drain_for(out, std::chrono::milliseconds(0)),
            DrainStatus::kItems);
  EXPECT_EQ(out, (std::vector<int>{2}));
  EXPECT_EQ(ch.drain_for(out, std::chrono::milliseconds(0)),
            DrainStatus::kClosed);
}

TEST(ServeService, BurstCountdownAnswersSkipsWithoutMembershipRows) {
  // A burst:<k> session deep inside the certified ladder starts a burst on
  // its first skip; the following decides are answered from the per-session
  // countdown (burst_skips) without a group batch row.
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Service svc(reg, cfg);
  std::vector<Response> out;
  const std::vector<double> x0(2, 0.0);
  const std::vector<double> u0(1, 0.0);
  svc.serve({open_req(1, 1, "toy2d", "burst:4"), decide_req(2, 1, x0)}, out);
  ASSERT_EQ(out[0].kind, Response::Kind::kOpened) << out[0].error;
  ASSERT_EQ(out[1].kind, Response::Kind::kDecision) << out[1].error;
  EXPECT_EQ(out[1].z, 0);  // the origin sits deep inside every rung
  const std::uint64_t before = svc.counters().burst_skips;
  for (std::uint64_t ref = 3; ref < 6; ++ref) {
    svc.serve({decide_req(ref, 1, u0, x0)}, out);
    ASSERT_EQ(out[0].kind, Response::Kind::kDecision) << out[0].error;
    EXPECT_EQ(out[0].z, 0);
  }
  EXPECT_GT(svc.counters().burst_skips, before);
  EXPECT_EQ(svc.counters().forced, 0u);
}

TEST(ServeServer, ResponsesCorrelateByRefAcrossInterleavedBatches) {
  // The out-of-order consumption path: several batches in flight across
  // three (plant, policy) groups, refs deliberately non-monotone, consumed
  // via await_any and correlated by ref alone (never arrival order).
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Server server(reg, cfg);
  auto conn = server.connect();
  const std::vector<double> x0(2, 0.0);

  // Two batches in flight at once (one tick may fuse them: opens run in
  // phase 1 ahead of decides, so the decides still land).  Closes go out
  // after the decides drained -- a close fused into the same tick as a
  // pending decide fails that decide by design.
  conn->submit({open_req(301, 1, "toy2d", "bang-bang"),
                open_req(102, 2, "toy2d", "periodic-2"),
                open_req(203, 3, "toy2d", "burst:2")});
  conn->submit({decide_req(907, 2, x0), decide_req(505, 1, x0),
                decide_req(708, 3, x0)});

  std::unordered_map<std::uint64_t, Response> by_ref;
  std::vector<Response> got;
  while (by_ref.size() < 6 && conn->await_any(got)) {
    for (Response& r : got) by_ref[r.ref] = std::move(r);
  }
  conn->submit({close_req(44, 3), close_req(66, 1), close_req(55, 2)});
  while (by_ref.size() < 9 && conn->await_any(got)) {
    for (Response& r : got) by_ref[r.ref] = std::move(r);
  }
  ASSERT_EQ(by_ref.size(), 9u);
  EXPECT_EQ(by_ref.at(301).kind, Response::Kind::kOpened);
  EXPECT_EQ(by_ref.at(301).session, 1u);
  EXPECT_EQ(by_ref.at(102).session, 2u);
  EXPECT_EQ(by_ref.at(203).kind, Response::Kind::kOpened);
  ASSERT_EQ(by_ref.at(505).kind, Response::Kind::kDecision)
      << by_ref.at(505).error;
  EXPECT_EQ(by_ref.at(505).session, 1u);
  ASSERT_EQ(by_ref.at(907).kind, Response::Kind::kDecision)
      << by_ref.at(907).error;
  EXPECT_EQ(by_ref.at(907).session, 2u);
  EXPECT_EQ(by_ref.at(708).session, 3u);
  EXPECT_EQ(by_ref.at(44).kind, Response::Kind::kClosed);
  EXPECT_EQ(by_ref.at(66).kind, Response::Kind::kClosed);
  EXPECT_EQ(by_ref.at(55).kind, Response::Kind::kClosed);
  EXPECT_EQ(server.open_sessions(), 0u);
}

TEST(ServeServer, TickThreadSurvivesDecideCloseBatch) {
  // Server-level regression for the decide+close crash: pre-fix this batch
  // threw std::out_of_range past Server::run's Error-only backstop and
  // std::terminate'd the process.  The server must answer and keep ticking.
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Server server(reg, cfg);
  auto conn = server.connect();
  std::vector<Request> batch{open_req(1, 50, "toy2d", "periodic-2"),
                             decide_req(2, 50, {0.0, 0.0}), close_req(3, 50)};
  conn->submit(batch);
  const std::vector<Response> res = conn->await(batch.size());
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].kind, Response::Kind::kOpened) << res[0].error;
  EXPECT_EQ(res[1].kind, Response::Kind::kError);
  EXPECT_EQ(res[2].kind, Response::Kind::kClosed);
  // Still alive: a follow-up batch round-trips.
  std::vector<Request> again{open_req(4, 51, "toy2d", "bang-bang"),
                             decide_req(5, 51, {0.0, 0.0})};
  conn->submit(again);
  const std::vector<Response> res2 = conn->await(again.size());
  ASSERT_EQ(res2.size(), 2u);
  EXPECT_EQ(res2[1].kind, Response::Kind::kDecision) << res2[1].error;
}

TEST(ServeServer, ConnectionsShareOneTickThread) {
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Server server(reg, cfg);
  auto a = server.connect();
  auto b = server.connect();

  std::vector<Request> batch_a{open_req(1, 100, "toy2d", "bang-bang"),
                               decide_req(2, 100, {0.0, 0.0})};
  std::vector<Request> batch_b{open_req(1, 200, "toy2d", "periodic-2"),
                               decide_req(2, 200, {0.0, 0.0})};
  a->submit(batch_a);
  b->submit(batch_b);
  const std::vector<Response> ra = a->await(batch_a.size());
  const std::vector<Response> rb = b->await(batch_b.size());
  ASSERT_EQ(ra.size(), 2u);
  ASSERT_EQ(rb.size(), 2u);
  // Responses route back to the submitting connection, 1:1 in order.
  EXPECT_EQ(ra[0].kind, Response::Kind::kOpened);
  EXPECT_EQ(ra[0].session, 100u);
  EXPECT_EQ(ra[1].kind, Response::Kind::kDecision) << ra[1].error;
  EXPECT_EQ(rb[0].kind, Response::Kind::kOpened);
  EXPECT_EQ(rb[0].session, 200u);
  EXPECT_EQ(rb[1].kind, Response::Kind::kDecision) << rb[1].error;
  EXPECT_GE(server.ticks(), 1u);
  EXPECT_EQ(server.open_sessions(), 2u);

  server.shutdown();
  EXPECT_THROW(a->submit(batch_a), oic::Error);
  EXPECT_THROW(b->await(1), oic::Error);
  // Idempotent: a second shutdown (and the destructor) is a no-op.
  server.shutdown();
}

}  // namespace
