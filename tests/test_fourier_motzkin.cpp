// Tests for Fourier-Motzkin elimination / projection.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "poly/fourier_motzkin.hpp"
#include "poly/hpolytope.hpp"

namespace {

using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::eliminate_variable;
using oic::poly::HPolytope;
using oic::poly::project;
using oic::poly::project_prefix;

TEST(FourierMotzkin, ProjectBoxDropsCoordinate) {
  const HPolytope box = HPolytope::box(Vector{-1, -2, -3}, Vector{1, 2, 3});
  const HPolytope p = project_prefix(box, 2);
  ASSERT_EQ(p.dim(), 2u);
  EXPECT_TRUE(approx_equal(p, HPolytope::box(Vector{-1, -2}, Vector{1, 2}), 1e-7));
}

TEST(FourierMotzkin, EliminateMiddleVariable) {
  const HPolytope box = HPolytope::box(Vector{-1, -2, -3}, Vector{1, 2, 3});
  const HPolytope p = eliminate_variable(box, 1);
  ASSERT_EQ(p.dim(), 2u);
  // Remaining coordinates are (x0, x2).
  EXPECT_TRUE(approx_equal(p, HPolytope::box(Vector{-1, -3}, Vector{1, 3}), 1e-7));
}

TEST(FourierMotzkin, ProjectionOfSimplex) {
  // Simplex x,y,z >= 0, x+y+z <= 1 projected to (x,y): triangle x,y >= 0, x+y <= 1.
  Matrix a{{-1, 0, 0}, {0, -1, 0}, {0, 0, -1}, {1, 1, 1}};
  Vector b{0, 0, 0, 1};
  const HPolytope simplex(a, b);
  const HPolytope tri = project_prefix(simplex, 2);
  EXPECT_TRUE(tri.contains(Vector{0.5, 0.5}));
  EXPECT_TRUE(tri.contains(Vector{0, 0}));
  EXPECT_FALSE(tri.contains(Vector{0.7, 0.7}));
}

TEST(FourierMotzkin, CouplingConstraintPropagates) {
  // { (x, u) | 0 <= u <= 1, x = 2u } projected onto x gives [0, 2].
  Matrix a{{0, 1}, {0, -1}, {1, -2}, {-1, 2}};
  Vector b{1, 0, 0, 0};
  const HPolytope p(a, b);
  const HPolytope px = project_prefix(p, 1);
  const auto bb = px.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->first[0], 0.0, 1e-7);
  EXPECT_NEAR(bb->second[0], 2.0, 1e-7);
}

TEST(FourierMotzkin, ProjectArbitraryCoordinates) {
  const HPolytope box = HPolytope::box(Vector{0, 10, 20}, Vector{1, 11, 21});
  const HPolytope p = project(box, {2, 0});
  // Kept order (x2, x0).
  ASSERT_EQ(p.dim(), 2u);
  EXPECT_TRUE(p.contains(Vector{20.5, 0.5}));
  EXPECT_FALSE(p.contains(Vector{0.5, 20.5}));
}

TEST(FourierMotzkin, ProjectionPreservesEmptiness) {
  Matrix a{{1, 0}, {-1, 0}};
  Vector b{0.0, -1.0};  // x <= 0 and x >= 1
  const HPolytope empty(a, b);
  const HPolytope p = eliminate_variable(empty, 1);
  EXPECT_TRUE(p.is_empty());
}

TEST(FourierMotzkin, UnboundedVariableEliminationKeepsRest) {
  // { (x, y) | 0 <= x <= 1 } with y free: eliminating y returns [0, 1].
  Matrix a{{1, 0}, {-1, 0}};
  Vector b{1.0, 0.0};
  const HPolytope p(a, b);
  const HPolytope q = eliminate_variable(p, 1);
  ASSERT_EQ(q.dim(), 1u);
  EXPECT_TRUE(q.contains(Vector{0.5}));
  EXPECT_FALSE(q.contains(Vector{1.5}));
}

TEST(FourierMotzkin, InvalidVariableThrows) {
  const HPolytope box = HPolytope::box(Vector{0}, Vector{1});
  EXPECT_THROW(eliminate_variable(box, 1), oic::PreconditionError);
  EXPECT_THROW(project(box, {0, 0}), oic::PreconditionError);
}

// Property: projection commutes with membership on random boxes rotated by
// shear maps -- a point is in the projection iff some lift is feasible, which
// for boxes can be checked directly.
class ProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionProperty, ProjectionMatchesSupportFunction) {
  // For any polytope P and projection pi onto coordinates K,
  //   h_{pi(P)}(d) = h_P(lift(d)).
  oic::Rng rng{static_cast<std::uint64_t>(GetParam() * 977 + 3)};
  // Random bounded 3-D polytope: box intersected with random halfspaces.
  HPolytope p = HPolytope::box(Vector{-2, -2, -2}, Vector{2, 2, 2});
  Matrix extra(3, 3);
  Vector be(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) extra(i, j) = rng.uniform(-1, 1);
    be[i] = rng.uniform(0.5, 2.0);
  }
  p = p.intersect(HPolytope(extra, be));
  ASSERT_FALSE(p.is_empty());

  const HPolytope proj = project_prefix(p, 2);
  for (int k = 0; k < 8; ++k) {
    Vector d2{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    if (d2.norm2() < 1e-6) continue;
    Vector d3{d2[0], d2[1], 0.0};
    const auto s2 = proj.support(d2);
    const auto s3 = p.support(d3);
    ASSERT_TRUE(s2.bounded && s3.bounded);
    EXPECT_NEAR(s2.value, s3.value, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionProperty, ::testing::Range(0, 20));

}  // namespace
