// Tests for the tube RMPC (Equation 5) and its feasible region (Prop. 1).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "control/lqr.hpp"
#include "control/tube_mpc.hpp"

namespace {

using oic::control::AffineLTI;
using oic::control::dlqr;
using oic::control::RmpcConfig;
using oic::control::TubeMpc;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

AffineLTI double_integrator(double wmag = 0.02) {
  const double dt = 0.1;
  Matrix a{{1, dt}, {0, 1}};
  Matrix b{{0.5 * dt * dt}, {dt}};
  return AffineLTI::canonical(a, b, HPolytope::sym_box(Vector{5, 5}),
                              HPolytope::sym_box(Vector{2}),
                              HPolytope::sym_box(Vector{wmag, wmag}));
}

TubeMpc make_mpc(double wmag = 0.02, std::size_t horizon = 8,
                 bool closed_loop = false) {
  const AffineLTI sys = double_integrator(wmag);
  const auto lqr = dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  RmpcConfig cfg;
  cfg.horizon = horizon;
  cfg.closed_loop_tightening = closed_loop;
  return TubeMpc(sys, lqr.k, cfg);
}

TEST(TubeMpc, TightenedSetsNested) {
  const TubeMpc mpc = make_mpc();
  for (std::size_t k = 1; k <= mpc.config().horizon; ++k) {
    EXPECT_TRUE(contains_polytope(mpc.tightened(k - 1), mpc.tightened(k), 1e-7))
        << "X(" << k << ") not inside X(" << k - 1 << ")";
  }
}

TEST(TubeMpc, TerminalSetInsideMostTightened) {
  const TubeMpc mpc = make_mpc();
  EXPECT_TRUE(contains_polytope(mpc.tightened(mpc.config().horizon),
                                mpc.terminal_set(), 1e-6));
  EXPECT_FALSE(mpc.terminal_set().is_empty());
}

TEST(TubeMpc, ControlAtOriginIsSmall) {
  TubeMpc mpc = make_mpc();
  const Vector u = mpc.control(Vector{0, 0});
  EXPECT_LT(u.norm_inf(), 1e-6);
  EXPECT_NEAR(mpc.last_solve().cost, 0.0, 1e-6);
}

TEST(TubeMpc, RespectsInputConstraints) {
  TubeMpc mpc = make_mpc();
  oic::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Vector x{rng.uniform(-1.5, 1.5), rng.uniform(-0.8, 0.8)};
    if (!mpc.feasible(x)) continue;
    const Vector u = mpc.control(x);
    EXPECT_TRUE(mpc.system().u_set().contains(u, 1e-6));
  }
}

TEST(TubeMpc, InfeasibleStateThrows) {
  TubeMpc mpc = make_mpc();
  EXPECT_THROW(mpc.control(Vector{100.0, 100.0}), oic::NumericalError);
  EXPECT_FALSE(mpc.feasible(Vector{100.0, 100.0}));
}

TEST(TubeMpc, PlannedTrajectoryConsistent) {
  TubeMpc mpc = make_mpc();
  const Vector x0{1.0, 0.5};
  ASSERT_TRUE(mpc.feasible(x0));
  mpc.control(x0);
  const auto& info = mpc.last_solve();
  ASSERT_EQ(info.planned_x.size(), mpc.config().horizon + 1);
  ASSERT_EQ(info.planned_u.size(), mpc.config().horizon);
  EXPECT_TRUE(approx_equal(info.planned_x[0], x0, 1e-7));
  // Planned states follow the nominal dynamics.
  for (std::size_t k = 0; k < info.planned_u.size(); ++k) {
    const Vector pred = mpc.system().step_nominal(info.planned_x[k], info.planned_u[k]);
    EXPECT_TRUE(approx_equal(pred, info.planned_x[k + 1], 1e-6));
  }
  // Terminal state lands in the terminal set.
  EXPECT_TRUE(mpc.terminal_set().contains(info.planned_x.back(), 1e-6));
}

TEST(TubeMpc, RegulatesToOriginUnderDisturbance) {
  // 1-norm running costs create a deadband when the horizon is short
  // (braking beats coasting because |v| is paid every step while position
  // savings accrue quadratically late), so the regulation test uses a long
  // horizon with state-dominant weights.
  const AffineLTI sys = double_integrator(0.02);
  const auto lqr = dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
  RmpcConfig cfg;
  cfg.horizon = 20;
  cfg.state_weight = 10.0;
  cfg.input_weight = 0.1;
  TubeMpc mpc(sys, lqr.k, cfg);
  oic::Rng rng(11);
  Vector x{1.5, -0.5};
  ASSERT_TRUE(mpc.feasible(x));
  for (int t = 0; t < 120; ++t) {
    const Vector u = mpc.control(x);
    const Vector w{rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02)};
    x = mpc.system().step(x, u, w);
    ASSERT_TRUE(mpc.system().x_set().contains(x, 1e-6));
  }
  // Converged to a disturbance-sized neighbourhood of the origin.
  EXPECT_LT(x.norm2(), 0.5);
}

TEST(TubeMpc, ShortHorizonOneNormDeadbandIsStable) {
  // With P ~ Q and a short horizon the optimal policy parks at a nonzero
  // state (1-norm turnpike deadband).  The closed loop must still be stable
  // and constraint-admissible -- this documents the behaviour rather than
  // pretending it regulates.
  TubeMpc mpc = make_mpc(0.0);
  Vector x{1.5, -0.5};
  double worst = 0.0;
  for (int t = 0; t < 200; ++t) {
    const Vector u = mpc.control(x);
    x = mpc.system().step_nominal(x, u);
    ASSERT_TRUE(mpc.system().x_set().contains(x, 1e-6));
    worst = std::max(worst, x.norm2());
  }
  // Stable: never left a modest envelope around the start, and ended with
  // near-zero or small drift velocity (deadband parking).
  EXPECT_LE(worst, 2.5);
  EXPECT_LT(std::abs(x[1]), 0.6);
}

TEST(TubeMpc, RecursiveFeasibilityUnderDisturbance) {
  // Prop. 1's essence: once feasible, the closed loop stays feasible for
  // every admissible disturbance (sampled here).
  TubeMpc mpc = make_mpc(0.02);
  oic::Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    Vector x{rng.uniform(-2, 2), rng.uniform(-1, 1)};
    if (!mpc.feasible(x)) continue;
    for (int t = 0; t < 60; ++t) {
      const Vector u = mpc.control(x);
      const Vector w{rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02)};
      x = mpc.system().step(x, u, w);
      ASSERT_TRUE(mpc.feasible(x)) << "feasibility lost at step " << t;
    }
  }
}

TEST(TubeMpc, FeasibleSetMatchesLpFeasibility) {
  // The FM-computed feasible region must agree with per-point LP
  // feasibility on a grid.
  TubeMpc mpc = make_mpc(0.02, 5);
  const HPolytope xf = mpc.compute_feasible_set();
  EXPECT_FALSE(xf.is_empty());
  int checked = 0;
  for (double a = -4.8; a <= 4.8; a += 0.8) {
    for (double b = -4.8; b <= 4.8; b += 0.8) {
      const Vector x{a, b};
      const bool in_set = xf.contains(x, 1e-6);
      const bool lp_ok = mpc.feasible(x);
      // Allow tolerance disagreements exactly on the boundary.
      if (xf.violation(x) > 1e-4 || xf.violation(x) < -1e-4) {
        EXPECT_EQ(in_set, lp_ok) << "at (" << a << ", " << b << ")";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 50);
}

TEST(TubeMpc, FeasibleSetIsRobustControlInvariant) {
  // Prop. 1: X_F is robust control invariant under the MPC law.  Simulate
  // from random feasible states with adversarial vertex disturbances.
  TubeMpc mpc = make_mpc(0.02, 5);
  const HPolytope xf = mpc.compute_feasible_set();
  oic::Rng rng(17);
  const auto bb = xf.bounding_box();
  ASSERT_TRUE(bb.has_value());
  int tested = 0;
  for (int trial = 0; trial < 100 && tested < 15; ++trial) {
    Vector x{rng.uniform(bb->first[0], bb->second[0]),
             rng.uniform(bb->first[1], bb->second[1])};
    if (xf.violation(x) > -1e-3) continue;  // strict interior starts
    ++tested;
    for (int t = 0; t < 40; ++t) {
      const Vector u = mpc.control(x);
      const Vector w{rng.bernoulli(0.5) ? 0.02 : -0.02,
                     rng.bernoulli(0.5) ? 0.02 : -0.02};
      x = mpc.system().step(x, u, w);
      ASSERT_TRUE(xf.contains(x, 1e-5))
          << "left X_F at step " << t << " (violation " << xf.violation(x) << ")";
    }
  }
  EXPECT_GT(tested, 5);
}

TEST(TubeMpc, ClosedLoopTighteningIsLessConservative) {
  // Chisci's closed-loop tightening shrinks X(k) by the *stabilized*
  // disturbance propagation, so the most-tightened set should be no smaller
  // than with open-loop A powers (for a stable K and neutrally stable A).
  const TubeMpc open_loop = make_mpc(0.05, 8, false);
  const TubeMpc closed_loop = make_mpc(0.05, 8, true);
  const auto& xo = open_loop.tightened(8);
  const auto& xc = closed_loop.tightened(8);
  // Compare volumes coarsely via Chebyshev radius.
  const double ro = xo.chebyshev().radius;
  const double rc = xc.chebyshev().radius;
  EXPECT_GE(rc, ro - 1e-9);
}

TEST(TubeMpc, HorizonOneWorks) {
  TubeMpc mpc = make_mpc(0.02, 1);
  const Vector u = mpc.control(Vector{0.1, 0.0});
  EXPECT_TRUE(mpc.system().u_set().contains(u, 1e-7));
}

TEST(TubeMpc, InvocationCounterTracksCalls) {
  TubeMpc mpc = make_mpc();
  EXPECT_EQ(mpc.invocations(), 0u);
  mpc.control(Vector{0, 0});
  mpc.control(Vector{0.1, 0.1});
  EXPECT_EQ(mpc.invocations(), 2u);
}

}  // namespace
