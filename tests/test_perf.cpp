// Unit tests for the performance layer: workspace-reuse LP solving
// (PreparedProblem / solve_warm), SupportSolver parity, the allocation-free
// MLP forward pass, the WHistory ring, and the l1_ball dimension guard.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "core/w_history.hpp"
#include "lp/prepared.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "poly/hpolytope.hpp"
#include "poly/support_solver.hpp"
#include "rl/mlp.hpp"

namespace {

using oic::Rng;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::lp::PreparedProblem;
using oic::lp::Problem;
using oic::lp::Relation;
using oic::lp::SolverWorkspace;
using oic::poly::HPolytope;

/// Random bounded-feasible LP: box-bounded variables, mixed-relation rows
/// through the box's interior, random objective.
Problem random_lp(Rng& rng, std::size_t nv, std::size_t rows) {
  Problem p(nv);
  for (std::size_t j = 0; j < nv; ++j) {
    p.set_bounds(j, -10.0, 10.0);
    p.set_objective_coeff(j, rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    Vector a(nv);
    for (std::size_t j = 0; j < nv; ++j) a[j] = rng.uniform(-1.0, 1.0);
    // rhs large enough that the box keeps a feasible chunk.
    p.add_constraint(a, Relation::kLessEq, rng.uniform(1.0, 5.0));
  }
  return p;
}

TEST(PreparedProblem, MatchesOneShotSolveExactly) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const Problem p = random_lp(rng, 2 + trial % 4, 3 + trial % 5);
    const oic::lp::Result fresh = oic::lp::solve(p);

    PreparedProblem prep(p);
    SolverWorkspace ws;
    const oic::lp::Result reused1 = prep.solve(ws);
    const oic::lp::Result reused2 = prep.solve(ws);  // workspace reuse

    ASSERT_EQ(fresh.status, reused1.status);
    ASSERT_EQ(fresh.status, reused2.status);
    if (fresh.status != oic::lp::Status::kOptimal) continue;
    EXPECT_EQ(fresh.objective, reused1.objective);
    EXPECT_EQ(fresh.objective, reused2.objective);
    for (std::size_t j = 0; j < p.num_vars(); ++j) {
      EXPECT_EQ(fresh.x[j], reused1.x[j]);
      EXPECT_EQ(fresh.x[j], reused2.x[j]);
    }
  }
}

TEST(PreparedProblem, SetRhsOnEqualityRowsMatchesRebuild) {
  // The TubeMpc pattern: equality rows whose rhs is patched per solve.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Problem base(3);
    for (std::size_t j = 0; j < 3; ++j) base.set_objective_coeff(j, rng.uniform(-1, 1));
    // x0 = v (patched), plus static inequality rows.
    base.add_constraint(Vector{1, 0, 0}, Relation::kEqual, 0.0);
    for (int i = 0; i < 4; ++i) {
      Vector a(3);
      for (std::size_t j = 0; j < 3; ++j) a[j] = rng.uniform(-1, 1);
      base.add_constraint(a, Relation::kLessEq, rng.uniform(1.0, 3.0));
    }
    for (std::size_t j = 0; j < 3; ++j) base.set_bounds(j, -8.0, 8.0);

    PreparedProblem prep(base);
    SolverWorkspace ws;
    for (int k = 0; k < 6; ++k) {
      const double v = rng.uniform(-2.0, 2.0);  // sign changes exercise the flip
      prep.set_rhs(0, v);
      const oic::lp::Result patched = prep.solve(ws);

      Problem rebuilt(3);
      for (std::size_t j = 0; j < 3; ++j) {
        rebuilt.set_objective_coeff(j, base.objective()[j]);
        rebuilt.set_bounds(j, -8.0, 8.0);
      }
      rebuilt.add_constraint(base.constraint(0).coeffs, Relation::kEqual, v);
      for (std::size_t i = 1; i < base.num_constraints(); ++i) {
        rebuilt.add_constraint(base.constraint(i).coeffs, Relation::kLessEq,
                               base.constraint(i).rhs);
      }
      const oic::lp::Result fresh = oic::lp::solve(rebuilt);
      ASSERT_EQ(fresh.status, patched.status) << "trial " << trial << " k " << k;
      if (fresh.status != oic::lp::Status::kOptimal) continue;
      EXPECT_EQ(fresh.objective, patched.objective);
      for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(fresh.x[j], patched.x[j]);
    }
  }
}

TEST(PreparedProblem, SetRhsSignFlipOnNonDynamicInequalityThrows) {
  Problem p(2);
  p.add_constraint(Vector{1, 1}, Relation::kLessEq, 1.0);
  p.set_bounds(0, 0.0, 5.0);
  p.set_bounds(1, 0.0, 5.0);
  PreparedProblem prep(p);
  EXPECT_THROW(prep.set_rhs(0, -1.0), oic::PreconditionError);
  // Declared dynamic, the same patch is legal.
  PreparedProblem dyn(p, {0});
  dyn.set_rhs(0, -1.0);  // must not throw
  SolverWorkspace ws;
  EXPECT_EQ(dyn.solve(ws).status, oic::lp::Status::kInfeasible);
}

TEST(PreparedProblem, WarmSolveMatchesColdOptimum) {
  // A drifting-rhs sequence (the MPC pattern): warm continuation must track
  // the cold optimum at every step.
  Rng rng(23);
  Problem p(3);
  for (std::size_t j = 0; j < 3; ++j) {
    p.set_objective_coeff(j, rng.uniform(0.2, 1.0));  // bounded below on the box
    p.set_bounds(j, -10.0, 10.0);
  }
  p.add_constraint(Vector{1, 0, 0}, Relation::kEqual, 0.0);
  p.add_constraint(Vector{1, 1, 0}, Relation::kLessEq, 4.0);
  p.add_constraint(Vector{0, 1, 1}, Relation::kGreaterEq, -4.0);

  PreparedProblem prep(p);
  SolverWorkspace ws_warm, ws_cold;
  PreparedProblem::WarmState warm;
  double x0 = -1.5;
  for (int k = 0; k < 40; ++k) {
    x0 += rng.uniform(-0.3, 0.35);  // drifts across zero
    prep.set_rhs(0, x0);
    const oic::lp::Result rw = prep.solve_warm(ws_warm, warm);
    const oic::lp::Result rc = prep.solve(ws_cold);
    ASSERT_EQ(rc.status, rw.status) << "step " << k;
    if (rc.status != oic::lp::Status::kOptimal) continue;
    EXPECT_NEAR(rc.objective, rw.objective, 1e-8) << "step " << k;
  }
}

TEST(PreparedProblem, WarmSolveTracksDynamicInequalityRhs) {
  // Regression: for a dynamic <=-row the warm path's B^-1 unit column is
  // the slack, not the (all-zero) eagerly reserved artificial; a wrong
  // column silently drops the rhs update.
  Problem p(2);
  p.set_objective_coeff(0, -1.0);  // maximize x0
  p.set_bounds(0, 0.0, 10.0);
  p.set_bounds(1, 0.0, 10.0);
  p.add_constraint(Vector{1, 1}, Relation::kLessEq, 4.0);
  PreparedProblem prep(p, {0});
  SolverWorkspace ws;
  PreparedProblem::WarmState warm;
  EXPECT_NEAR(prep.solve_warm(ws, warm).objective, -4.0, 1e-9);
  prep.set_rhs(0, 2.5);  // same sign class, warm continuation
  EXPECT_NEAR(prep.solve_warm(ws, warm).objective, -2.5, 1e-9);
  // Crossing zero flips the row's orientation: x0 + x1 <= -1 is infeasible
  // over [0,10]^2, and the warm continuation must agree.
  prep.set_rhs(0, -1.0);
  EXPECT_EQ(prep.solve_warm(ws, warm).status, oic::lp::Status::kInfeasible);
}

TEST(PreparedProblem, WarmStateFromAnotherProblemFallsBackCold) {
  // Two different problems sharing one (workspace, warm) pair: the second
  // solve must not continue from the first problem's tableau.
  Problem p1(1), p2(1);
  p1.set_objective_coeff(0, 1.0);
  p1.set_bounds(0, 2.0, 9.0);  // min x0 -> 2
  p2.set_objective_coeff(0, 1.0);
  p2.set_bounds(0, 5.0, 9.0);  // min x0 -> 5
  PreparedProblem a(p1), b(p2);
  SolverWorkspace ws;
  PreparedProblem::WarmState warm;
  EXPECT_NEAR(a.solve_warm(ws, warm).objective, 2.0, 1e-9);
  EXPECT_NEAR(b.solve_warm(ws, warm).objective, 5.0, 1e-9);
  EXPECT_NEAR(a.solve_warm(ws, warm).objective, 2.0, 1e-9);
}

TEST(PreparedProblem, WarmStateWithForeignWorkspaceFallsBackCold) {
  Problem p(2);
  p.set_objective_coeff(0, 1.0);
  p.set_bounds(0, 0.0, 5.0);
  p.set_bounds(1, 0.0, 5.0);
  p.add_constraint(Vector{1, 1}, Relation::kGreaterEq, 1.0);
  PreparedProblem prep(p);
  SolverWorkspace ws1, ws2;
  PreparedProblem::WarmState warm;
  const auto r1 = prep.solve_warm(ws1, warm);
  // Same warm state, different (fresh) workspace: must cold-solve, not UB.
  const auto r2 = prep.solve_warm(ws2, warm);
  ASSERT_EQ(r1.status, oic::lp::Status::kOptimal);
  ASSERT_EQ(r2.status, oic::lp::Status::kOptimal);
  EXPECT_EQ(r1.objective, r2.objective);
}

TEST(SupportSolver, MatchesFreshProblemAnswers) {
  Rng rng(42);
  for (int trial = 0; trial < 15; ++trial) {
    // Random bounded polytope: a box intersected with random halfspaces.
    Vector r(3);
    for (std::size_t i = 0; i < 3; ++i) r[i] = rng.uniform(0.5, 3.0);
    HPolytope p = HPolytope::sym_box(r);
    for (int i = 0; i < 4; ++i) {
      Vector a(3);
      for (std::size_t j = 0; j < 3; ++j) a[j] = rng.uniform(-1, 1);
      p = p.intersect(HPolytope(Matrix::from_rows({a}), Vector{rng.uniform(0.5, 2.0)}));
    }
    oic::poly::SupportSolver solver(p);
    for (int q = 0; q < 10; ++q) {
      Vector d(3);
      for (std::size_t j = 0; j < 3; ++j) d[j] = rng.uniform(-1, 1);
      const auto fresh = p.support(d);
      const auto reused = solver.support(d);
      ASSERT_EQ(fresh.bounded, reused.bounded);
      ASSERT_EQ(fresh.feasible, reused.feasible);
      if (!fresh.bounded || !fresh.feasible) continue;
      EXPECT_EQ(fresh.value, reused.value);
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(fresh.maximizer[j], reused.maximizer[j]);
      }
    }
  }
}

TEST(Mlp, ForwardIntoMatchesReferenceForward) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    oic::rl::Mlp net({4, 32, 16, 2}, rng);
    oic::rl::MlpWorkspace ws;
    for (int s = 0; s < 20; ++s) {
      Vector in(4);
      for (std::size_t j = 0; j < 4; ++j) in[j] = rng.normal();
      const Vector ref = net.forward(in);
      const Vector& fast = net.forward_into(in, ws);
      ASSERT_EQ(ref.size(), fast.size());
      for (std::size_t j = 0; j < ref.size(); ++j) {
        EXPECT_NEAR(ref[j], fast[j], 1e-12);
      }
    }
  }
}

TEST(WHistory, RingSemanticsOldestFirst) {
  oic::core::WHistory h(3);
  EXPECT_EQ(h.capacity(), 3u);
  EXPECT_TRUE(h.empty());
  h.push(Vector{1.0});
  h.push(Vector{2.0});
  ASSERT_EQ(h.size(), 2u);
  EXPECT_DOUBLE_EQ(h[0][0], 1.0);
  EXPECT_DOUBLE_EQ(h.latest()[0], 2.0);
  h.push(Vector{3.0});
  h.push(Vector{4.0});  // evicts 1.0
  ASSERT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h[0][0], 2.0);
  EXPECT_DOUBLE_EQ(h[1][0], 3.0);
  EXPECT_DOUBLE_EQ(h[2][0], 4.0);
  h.push(Vector{5.0});
  EXPECT_DOUBLE_EQ(h[0][0], 3.0);
  EXPECT_DOUBLE_EQ(h.latest()[0], 5.0);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.capacity(), 3u);
  h.push(Vector{9.0});
  EXPECT_DOUBLE_EQ(h[0][0], 9.0);
}

TEST(WHistory, ZeroCapacityRetainsNothing) {
  oic::core::WHistory h(0);
  h.push(Vector{1.0});
  EXPECT_TRUE(h.empty());
}

TEST(WHistory, ConvertsFromVectorForAdHocCallers) {
  std::vector<Vector> xs = {Vector{1.0}, Vector{2.0}};
  oic::core::WHistory h = xs;
  ASSERT_EQ(h.size(), 2u);
  EXPECT_DOUBLE_EQ(h[0][0], 1.0);
  EXPECT_DOUBLE_EQ(h[1][0], 2.0);
}

TEST(HPolytope, L1BallGuardsAgainstHugeDimensions) {
  // 2^dim facet rows: beyond the cap the representation is a memory bomb.
  EXPECT_THROW(HPolytope::l1_ball(HPolytope::kL1BallMaxDim + 1, 1.0),
               oic::PreconditionError);
  EXPECT_THROW(HPolytope::l1_ball(64, 1.0), oic::PreconditionError);
  // At and below the cap it still works.
  const HPolytope small = HPolytope::l1_ball(3, 2.0);
  EXPECT_EQ(small.num_constraints(), 8u);
  EXPECT_TRUE(small.contains(Vector{2.0, 0.0, 0.0}));
  EXPECT_FALSE(small.contains(Vector{1.5, 1.0, 0.0}));
}

}  // namespace
