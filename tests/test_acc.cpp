// Tests for the ACC case study: coordinate shifts, set pipeline, scenario
// definitions, the evaluation harness, and a short DQN-training smoke run.

#include <gtest/gtest.h>

#include <cmath>

#include "acc/harness.hpp"
#include "acc/trainer.hpp"
#include "common/error.hpp"
#include "common/random.hpp"
#include "core/drl_policy.hpp"

namespace {

using oic::Rng;
using oic::linalg::Vector;

/// AccCase construction computes the RMPC feasible set (seconds); share one
/// instance across the whole test binary.
oic::acc::AccCase& shared_acc() {
  static oic::acc::AccCase acc;
  return acc;
}

TEST(AccModel, ShiftedDynamicsMatchRawNewton) {
  auto& acc = shared_acc();
  const auto& p = acc.params();
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const double s = rng.uniform(p.s_min, p.s_max);
    const double v = rng.uniform(p.v_min, p.v_max);
    const double u = rng.uniform(p.u_min, p.u_max);
    const double vf = rng.uniform(p.vf_min, p.vf_max);

    // Raw update (Sec. IV).
    const double s_next = s - (v - vf) * p.delta;
    const double v_next = v - (p.drag * v - u) * p.delta;

    // Shifted update through the LTI model.
    const Vector x = acc.to_shifted(s, v);
    const Vector u_sh{u - p.u_eq()};
    const Vector w{acc.w_from_vf(vf)};
    const Vector x_next = acc.system().step(x, u_sh, w);
    const auto [s2, v2] = acc.from_shifted(x_next);
    EXPECT_NEAR(s2, s_next, 1e-10);
    EXPECT_NEAR(v2, v_next, 1e-10);
  }
}

TEST(AccModel, ConstraintBoxesShiftedCorrectly) {
  auto& acc = shared_acc();
  const auto& p = acc.params();
  // Corners of the raw safe box map onto the shifted X boundary.
  EXPECT_TRUE(acc.system().x_set().contains(acc.to_shifted(p.s_min, p.v_min), 1e-9));
  EXPECT_TRUE(acc.system().x_set().contains(acc.to_shifted(p.s_max, p.v_max), 1e-9));
  EXPECT_FALSE(acc.system().x_set().contains(acc.to_shifted(p.s_max + 1, p.v_max)));
  // Raw u = 0 (skip) is admissible.
  EXPECT_TRUE(acc.system().u_set().contains(acc.u_skip(), 1e-9));
  EXPECT_NEAR(acc.u_raw(acc.u_skip()), 0.0, 1e-12);
}

TEST(AccModel, EnergyIsRawActuationMagnitude) {
  auto& acc = shared_acc();
  EXPECT_NEAR(acc.energy_raw(acc.u_skip()), 0.0, 1e-12);
  const Vector u_sh{2.0};  // raw u = 2 + u_eq = 10
  EXPECT_NEAR(acc.energy_raw(u_sh), std::fabs(2.0 + acc.params().u_eq()), 1e-12);
}

TEST(AccSets, PipelineSatisfiesPaperStructure) {
  auto& acc = shared_acc();
  EXPECT_TRUE(oic::core::verify_nesting(acc.sets()));
  EXPECT_TRUE(oic::core::verify_strengthened_property(acc.system(), acc.sets(),
                                                      acc.u_skip()));
  EXPECT_FALSE(acc.sets().x_prime.is_empty());
  // Prop. 1 cross-check on sampled points: XI members are RMPC-feasible.
  Rng rng(5);
  const auto bb = acc.sets().xi.bounding_box();
  ASSERT_TRUE(bb.has_value());
  int tested = 0;
  for (int i = 0; i < 200 && tested < 25; ++i) {
    Vector x{rng.uniform(bb->first[0], bb->second[0]),
             rng.uniform(bb->first[1], bb->second[1])};
    if (acc.sets().xi.violation(x) > -1e-3) continue;  // interior only
    ++tested;
    EXPECT_TRUE(acc.rmpc().feasible(x));
  }
  EXPECT_GT(tested, 10);
}

TEST(AccSets, SampleX0LandsInXPrime) {
  auto& acc = shared_acc();
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(acc.sets().x_prime.contains(acc.sample_x0(rng), 1e-9));
  }
}

TEST(AccScenarios, IdsAndRanges) {
  const oic::acc::AccParams p;
  const auto fig4 = oic::acc::fig4_scenario(p);
  EXPECT_EQ(fig4.id, "Fig.4");
  EXPECT_DOUBLE_EQ(fig4.profile->v_min(), 30.0);

  for (int i = 1; i <= 5; ++i) {
    const auto s = oic::acc::range_scenario(i, p);
    EXPECT_EQ(s.id, "Ex." + std::to_string(i));
  }
  // Table I ranges.
  EXPECT_DOUBLE_EQ(oic::acc::range_scenario(2, p).profile->v_min(), 32.5);
  EXPECT_DOUBLE_EQ(oic::acc::range_scenario(5, p).profile->v_max(), 41.0);

  for (int i = 6; i <= 10; ++i) {
    const auto s = oic::acc::regularity_scenario(i, p);
    EXPECT_EQ(s.id, "Ex." + std::to_string(i));
  }
  EXPECT_THROW(oic::acc::range_scenario(0, p), oic::PreconditionError);
  EXPECT_THROW(oic::acc::regularity_scenario(5, p), oic::PreconditionError);
}

TEST(AccHarness, CaseGenerationIsDeterministic) {
  auto& acc = shared_acc();
  const auto scen = oic::acc::fig4_scenario(acc.params());
  Rng rng1(77), rng2(77);
  const auto c1 = oic::acc::make_case(acc, scen, rng1, 50);
  const auto c2 = oic::acc::make_case(acc, scen, rng2, 50);
  EXPECT_TRUE(approx_equal(c1.x0, c2.x0, 0.0));
  ASSERT_EQ(c1.signal.size(), c2.signal.size());
  for (std::size_t i = 0; i < c1.signal.size(); ++i) {
    EXPECT_DOUBLE_EQ(c1.signal[i], c2.signal[i]);
  }
}

TEST(AccHarness, BangBangSavesFuelAndStaysSafe) {
  auto& acc = shared_acc();
  const auto scen = oic::acc::fig4_scenario(acc.params());
  oic::core::BangBangPolicy bb;
  oic::core::AlwaysRunPolicy always;
  Rng rng(123);
  double base_sum = 0.0, bb_sum = 0.0;
  for (int c = 0; c < 4; ++c) {
    const auto data = oic::acc::make_case(acc, scen, rng, 100);
    const auto base = oic::acc::run_episode(acc, always, data);
    const auto ours = oic::acc::run_episode(acc, bb, data);
    EXPECT_FALSE(base.left_x);
    EXPECT_FALSE(ours.left_x);
    EXPECT_FALSE(ours.left_xi);
    EXPECT_EQ(base.skipped, 0u);
    EXPECT_GT(ours.skipped, 40u);  // the framework skips most steps
    base_sum += base.fuel;
    bb_sum += ours.fuel;
  }
  EXPECT_LT(bb_sum, base_sum);  // skipping saves fuel on aggregate
}

TEST(AccHarness, FuelSavingMetric) {
  oic::acc::EpisodeResult base, ours;
  base.fuel = 100.0;
  ours.fuel = 80.0;
  EXPECT_NEAR(oic::acc::fuel_saving(base, ours), 0.2, 1e-12);
  base.fuel = 0.0;
  EXPECT_THROW(oic::acc::fuel_saving(base, ours), oic::PreconditionError);
}

TEST(AccHarness, ComparePoliciesShapes) {
  auto& acc = shared_acc();
  const auto scen = oic::acc::fig4_scenario(acc.params());
  oic::core::BangBangPolicy bb;
  oic::core::PeriodicPolicy periodic(2);
  const auto cmp =
      oic::acc::compare_policies(acc, scen, {&bb, &periodic}, 3, 60, 2024);
  ASSERT_EQ(cmp.policy_names.size(), 2u);
  ASSERT_EQ(cmp.savings[0].size(), 3u);
  ASSERT_EQ(cmp.savings[1].size(), 3u);
  EXPECT_FALSE(cmp.any_violation[0]);
  EXPECT_FALSE(cmp.any_violation[1]);
  EXPECT_GT(cmp.mean_skipped[0], cmp.mean_skipped[1]);  // bang-bang skips more
}

TEST(AccTrainer, ShortTrainingRunsAndLearnsToSkip) {
  auto& acc = shared_acc();
  const auto scen = oic::acc::fig4_scenario(acc.params());
  oic::acc::TrainerConfig cfg;
  cfg.episodes = 12;
  cfg.steps_per_episode = 60;
  cfg.seed = 7;
  oic::acc::TrainingLog log;
  const oic::acc::TrainedAgent trained = oic::acc::train_dqn(acc, scen, cfg, &log);
  ASSERT_NE(trained.agent, nullptr);
  EXPECT_EQ(log.episode_reward.size(), 12u);
  EXPECT_EQ(log.episode_skip_ratio.size(), 12u);
  EXPECT_GT(trained.agent->train_steps(), 0u);
  EXPECT_EQ(trained.state_scale.size(),
            oic::core::drl_state_dim(2, 2, cfg.memory));

  // The trained policy must be usable through the framework and safe.
  const auto drl = trained.make_policy();
  Rng rng(31);
  const auto data = oic::acc::make_case(acc, scen, rng, 60);
  const auto r = oic::acc::run_episode(acc, *drl, data);
  EXPECT_FALSE(r.left_x);
  EXPECT_FALSE(r.left_xi);
  EXPECT_EQ(r.steps, 60u);
}

TEST(AccFuel, SkippingCoastsAtIdle) {
  auto& acc = shared_acc();
  // Raw u = 0 => engine power 0 => idle fuel for the period.
  const Vector x = acc.to_shifted(150.0, 40.0);
  const double fuel = acc.fuel_step(x, acc.u_skip());
  EXPECT_NEAR(fuel, acc.fuel_model().params().idle_rate * acc.params().delta, 1e-9);
  // Holding speed (raw u = u_eq) burns more than idling.
  EXPECT_GT(acc.fuel_step(x, Vector{0.0}), fuel);
}

}  // namespace
