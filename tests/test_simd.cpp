// Bit-level parity suite for the per-ISA kernel dispatch tier
// (linalg/simd.hpp, linalg/dispatch.hpp, linalg/kernels.hpp).
//
// Every vectorized kernel claims BIT-IDENTICAL output to its scalar
// reference (docs/perf.md states the per-kernel contract); these tests
// enforce the claim by running both tables on the same inputs and
// comparing raw bit patterns (so NaN payloads and signed zeros count).
// Sizes sweep 1..33 to cross every vector-width remainder, leading
// dimensions are deliberately unaligned, and the LP pricing/ratio
// kernels are additionally exercised end-to-end: the same simplex
// problems must produce byte-identical results under forced-scalar and
// forced-AVX2 dispatch.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "linalg/dispatch.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "lp/prepared.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace {

using oic::Rng;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::linalg::detail::KernelTable;
using oic::linalg::detail::table_for;
namespace simd = oic::linalg::simd;
using oic::lp::PreparedProblem;
using oic::lp::Problem;
using oic::lp::Relation;
using oic::lp::SolverWorkspace;

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Bitwise double equality (distinguishes -0.0 from 0.0 and compares NaN
/// payloads exactly -- the contract is "same bits", not "same value").
::testing::AssertionResult BitEq(const char* ae, const char* be, double a,
                                 double b) {
  if (bits(a) == bits(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << ae << " and " << be << " differ: " << a << " vs " << b
         << " (bits " << std::hex << bits(a) << " vs " << bits(b) << ")";
}
#define EXPECT_BITEQ(a, b) EXPECT_PRED_FORMAT2(BitEq, a, b)
#define ASSERT_BITEQ(a, b) ASSERT_PRED_FORMAT2(BitEq, a, b)

bool have_avx2() { return simd::compiled_avx2() && simd::cpu_has_avx2(); }

/// Restores default ISA resolution on scope exit even through failures.
struct IsaGuard {
  ~IsaGuard() { simd::reset(); }
};

Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-2.0, 2.0);
  return m;
}

std::vector<double> random_buf(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

// ---------------------------------------------------------------------------
// dispatch plumbing
// ---------------------------------------------------------------------------

TEST(SimdDispatch, EnvKillSwitchPinsScalar) {
  IsaGuard guard;
  const char* old = std::getenv("OIC_SIMD");
  const std::string saved = old ? old : "";
  const bool had = old != nullptr;

  ::setenv("OIC_SIMD", "off", 1);
  simd::reset();
  EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  EXPECT_STREQ(simd::active_isa_name(), "scalar");

  ::setenv("OIC_SIMD", "scalar", 1);
  simd::reset();
  EXPECT_EQ(simd::active(), simd::Isa::kScalar);

  if (had)
    ::setenv("OIC_SIMD", saved.c_str(), 1);
  else
    ::unsetenv("OIC_SIMD");
}

TEST(SimdDispatch, ForceAndResetRoundTrip) {
  IsaGuard guard;
  EXPECT_TRUE(simd::force(simd::Isa::kScalar));
  EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  if (have_avx2()) {
    EXPECT_TRUE(simd::force(simd::Isa::kAvx2));
    EXPECT_EQ(simd::active(), simd::Isa::kAvx2);
    EXPECT_STREQ(simd::active_isa_name(), "avx2");
  } else {
    // Unavailable ISA must be refused, leaving the selection unchanged.
    EXPECT_FALSE(simd::force(simd::Isa::kAvx2));
    EXPECT_EQ(simd::active(), simd::Isa::kScalar);
  }
  simd::reset();
  // After reset the fallback still resolves to SOMETHING usable.
  EXPECT_NO_FATAL_FAILURE((void)simd::active());
}

TEST(SimdDispatch, UnavailableTableRequestFallsBackToScalar) {
  // table_for must never return a null-entry table, whatever is asked for.
  const KernelTable& t = table_for(simd::Isa::kAvx2);
  EXPECT_NE(t.lp_row_sub_scaled, nullptr);
  EXPECT_NE(t.batch_max_violation, nullptr);
  EXPECT_NE(t.lp_argmin_masked, nullptr);
}

// ---------------------------------------------------------------------------
// LP row primitives: sizes 1..33 cross every AVX2 remainder lane count
// ---------------------------------------------------------------------------

TEST(SimdKernels, RowPrimitivesParityAllSizes) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable; scalar-only build/CPU";
  const KernelTable& sc = table_for(simd::Isa::kScalar);
  const KernelTable& vx = table_for(simd::Isa::kAvx2);
  Rng rng(101);
  const double factors[] = {0.0, -0.0, 1.0, -1.3, 2.7e-3, -8.5e12, 0.5};
  for (std::size_t n = 1; n <= 33; ++n) {
    for (double f : factors) {
      const std::vector<double> src = random_buf(rng, n);
      std::vector<double> a = random_buf(rng, n);
      std::vector<double> b = a;
      sc.lp_row_sub_scaled(a.data(), src.data(), f, n);
      vx.lp_row_sub_scaled(b.data(), src.data(), f, n);
      for (std::size_t j = 0; j < n; ++j) ASSERT_BITEQ(a[j], b[j]);

      std::vector<double> c = random_buf(rng, n);
      std::vector<double> d = c;
      sc.lp_row_add_scaled(c.data(), src.data(), f, n);
      vx.lp_row_add_scaled(d.data(), src.data(), f, n);
      for (std::size_t j = 0; j < n; ++j) ASSERT_BITEQ(c[j], d[j]);
    }
  }
}

TEST(SimdKernels, ArgminParityTiesThresholdsNaN) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable; scalar-only build/CPU";
  const KernelTable& sc = table_for(simd::Isa::kScalar);
  const KernelTable& vx = table_for(simd::Isa::kAvx2);
  Rng rng(202);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double thresholds[] = {-1e-9, 0.0, 0.5, -inf};
  for (std::size_t n = 1; n <= 33; ++n) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<double> v = random_buf(rng, n);
      // Force exact ties on the minimum so earliest-index selection is
      // actually exercised, and sprinkle non-finite entries.
      if (n >= 3 && trial % 2 == 0) v[n - 1] = v[n / 2] = v[0];
      if (trial % 3 == 0) v[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1))] = nan;
      if (trial % 4 == 0) v[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1))] = -inf;
      std::vector<unsigned char> blocked(n);
      for (std::size_t j = 0; j < n; ++j)
        blocked[j] = static_cast<unsigned char>(rng.uniform_int(0, 2) == 0);
      for (double th : thresholds) {
        ASSERT_EQ(sc.lp_argmin(v.data(), n, th), vx.lp_argmin(v.data(), n, th))
            << "n=" << n << " th=" << th;
        ASSERT_EQ(sc.lp_argmin_masked(v.data(), blocked.data(), n, th),
                  vx.lp_argmin_masked(v.data(), blocked.data(), n, th))
            << "n=" << n << " th=" << th;
        ASSERT_EQ(sc.lp_argmin_masked(v.data(), nullptr, n, th),
                  vx.lp_argmin_masked(v.data(), nullptr, n, th));
      }
    }
  }
  // Degenerate cases: everything blocked, nothing below threshold.
  std::vector<double> v = {3.0, 4.0, 5.0};
  std::vector<unsigned char> all(3, 1);
  EXPECT_EQ(vx.lp_argmin_masked(v.data(), all.data(), 3, 100.0), -1);
  EXPECT_EQ(vx.lp_argmin(v.data(), 3, 1.0), -1);
}

// ---------------------------------------------------------------------------
// MLP / membership kernels
// ---------------------------------------------------------------------------

TEST(SimdKernels, GemvFamilyParityAllSizes) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable; scalar-only build/CPU";
  const KernelTable& sc = table_for(simd::Isa::kScalar);
  const KernelTable& vx = table_for(simd::Isa::kAvx2);
  Rng rng(303);
  for (std::size_t rows = 1; rows <= 33; rows += (rows < 9 ? 1 : 5)) {
    for (std::size_t cols = 1; cols <= 33; cols += (cols < 9 ? 1 : 5)) {
      const Matrix a = random_matrix(rng, rows, cols);
      const std::vector<double> x = random_buf(rng, cols);
      const std::vector<double> b = random_buf(rng, rows);

      std::vector<double> y1(rows), y2(rows);
      sc.gemv(a, x.data(), y1.data());
      vx.gemv(a, x.data(), y2.data());
      for (std::size_t i = 0; i < rows; ++i) ASSERT_BITEQ(y1[i], y2[i]);

      y1 = random_buf(rng, rows);
      y2 = y1;
      sc.gemv_sub(a, x.data(), y1.data());
      vx.gemv_sub(a, x.data(), y2.data());
      for (std::size_t i = 0; i < rows; ++i) ASSERT_BITEQ(y1[i], y2[i]);

      for (bool relu : {false, true}) {
        sc.gemv_bias(a, x.data(), b.data(), y1.data(), relu);
        vx.gemv_bias(a, x.data(), b.data(), y2.data(), relu);
        for (std::size_t i = 0; i < rows; ++i) ASSERT_BITEQ(y1[i], y2[i]);
      }
    }
  }
}

TEST(SimdKernels, BatchedKernelsParityUnalignedLeadingDims) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable; scalar-only build/CPU";
  const KernelTable& sc = table_for(simd::Isa::kScalar);
  const KernelTable& vx = table_for(simd::Isa::kAvx2);
  Rng rng(404);
  const std::size_t sizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 31, 32, 33};
  const std::size_t batches[] = {1, 2, 3, 4, 5, 8, 9};
  for (std::size_t rows : sizes) {
    for (std::size_t cols : sizes) {
      for (std::size_t batch : batches) {
        // Unaligned leading dimensions: odd pads break any assumption
        // that rows are 32-byte aligned or contiguous.
        const std::size_t ldx = cols + (rows + batch) % 4;
        const std::size_t ldy = rows + (cols + batch) % 3;
        const Matrix a = random_matrix(rng, rows, cols);
        const std::vector<double> b = random_buf(rng, rows);
        const std::vector<double> x = random_buf(rng, batch * ldx);

        std::vector<double> y1(batch * ldy, 0.25), y2(batch * ldy, 0.25);
        for (bool relu : {false, true}) {
          sc.gemm_bias(a, x.data(), batch, ldx, b.data(), y1.data(), ldy, relu);
          vx.gemm_bias(a, x.data(), batch, ldx, b.data(), y2.data(), ldy, relu);
          for (std::size_t k = 0; k < y1.size(); ++k) ASSERT_BITEQ(y1[k], y2[k]);
        }

        // Deltas with exact zeros exercise the zero-row skip.
        std::vector<double> d = random_buf(rng, batch * ldy);
        for (std::size_t k = 0; k < d.size(); k += 3) d[k] = 0.0;
        std::vector<double> dp1(batch * ldx, -1.0), dp2(batch * ldx, -1.0);
        sc.gemm_transpose(a, d.data(), batch, ldy, dp1.data(), ldx);
        vx.gemm_transpose(a, d.data(), batch, ldy, dp2.data(), ldx);
        for (std::size_t k = 0; k < dp1.size(); ++k) ASSERT_BITEQ(dp1[k], dp2[k]);

        Matrix dw1 = random_matrix(rng, rows, cols);
        Matrix dw2 = dw1;
        std::vector<double> db1 = random_buf(rng, rows);
        std::vector<double> db2 = db1;
        sc.gemm_grad_accum(d.data(), batch, ldy, x.data(), ldx, dw1, db1.data());
        vx.gemm_grad_accum(d.data(), batch, ldy, x.data(), ldx, dw2, db2.data());
        for (std::size_t i = 0; i < rows; ++i) {
          ASSERT_BITEQ(db1[i], db2[i]);
          for (std::size_t j = 0; j < cols; ++j) ASSERT_BITEQ(dw1(i, j), dw2(i, j));
        }
      }
    }
  }
}

TEST(SimdKernels, GemmBiasMatchesPerSampleGemvBias) {
  // The DQN batched-training parity property: a batched layer pass is
  // bit-identical to looping the per-sample kernel over the rows -- on
  // EVERY table, not just scalar.
  Rng rng(505);
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2}) {
    if (isa == simd::Isa::kAvx2 && !have_avx2()) continue;
    const KernelTable& kt = table_for(isa);
    const Matrix a = random_matrix(rng, 13, 7);
    const std::vector<double> b = random_buf(rng, 13);
    const std::size_t batch = 9, ldx = 10, ldy = 15;
    const std::vector<double> x = random_buf(rng, batch * ldx);
    std::vector<double> y(batch * ldy), yref(batch * ldy);
    kt.gemm_bias(a, x.data(), batch, ldx, b.data(), y.data(), ldy, true);
    for (std::size_t r = 0; r < batch; ++r)
      kt.gemv_bias(a, x.data() + r * ldx, b.data(), yref.data() + r * ldy, true);
    for (std::size_t r = 0; r < batch; ++r)
      for (std::size_t i = 0; i < 13; ++i)
        ASSERT_BITEQ(y[r * ldy + i], yref[r * ldy + i]);
  }
}

TEST(SimdKernels, BatchMaxViolationEdgesAndNonFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Rng rng(606);

  // Empty constraint system: every session reports exactly 0.0.
  {
    const Matrix empty(0, 3);
    const std::vector<double> x = random_buf(rng, 2 * 5);
    double worst[2] = {99.0, 99.0};
    oic::linalg::batch_max_violation(empty, nullptr, x.data(), 2, 5, worst);
    EXPECT_BITEQ(worst[0], 0.0);
    EXPECT_BITEQ(worst[1], 0.0);
  }

  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable; scalar-only build/CPU";
  const KernelTable& sc = table_for(simd::Isa::kScalar);
  const KernelTable& vx = table_for(simd::Isa::kAvx2);
  const std::size_t sizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33};
  for (std::size_t rows : sizes) {
    for (std::size_t cols : sizes) {
      for (std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                                std::size_t{5}, std::size_t{9}}) {
        const std::size_t ldx = cols + batch % 3;
        Matrix a = random_matrix(rng, rows, cols);
        std::vector<double> b = random_buf(rng, rows);
        std::vector<double> x = random_buf(rng, batch * ldx);
        // Non-finite state entries: stale sessions carry inf/NaN states and
        // the monitor's batched check must degrade exactly like the scalar
        // membership test.
        x[0] = nan;
        if (batch > 1) x[ldx] = inf;
        if (batch > 2) x[2 * ldx + (cols - 1)] = -inf;
        b[0] = (rows > 1) ? inf : b[0];
        std::vector<double> w1(batch), w2(batch);
        sc.batch_max_violation(a, b.data(), x.data(), batch, ldx, w1.data());
        vx.batch_max_violation(a, b.data(), x.data(), batch, ldx, w2.data());
        for (std::size_t r = 0; r < batch; ++r) ASSERT_BITEQ(w1[r], w2[r]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the blocked/transposed simplex must be byte-identical across
// ISAs on the random-LP corpus (pricing argmin, ratio test, pivot updates).
// ---------------------------------------------------------------------------

/// Same corpus generator as tests/test_perf.cpp: box-bounded variables,
/// mixed random rows through the interior, random objective.
Problem random_lp(Rng& rng, std::size_t nv, std::size_t rows) {
  Problem p(nv);
  for (std::size_t j = 0; j < nv; ++j) {
    p.set_bounds(j, -10.0, 10.0);
    p.set_objective_coeff(j, rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    Vector a(nv);
    for (std::size_t j = 0; j < nv; ++j) a[j] = rng.uniform(-1.0, 1.0);
    p.add_constraint(a, Relation::kLessEq, rng.uniform(1.0, 5.0));
  }
  return p;
}

struct SolveRecord {
  oic::lp::Status status;
  std::uint64_t objective_bits;
  std::vector<std::uint64_t> x_bits;
};

std::vector<SolveRecord> run_cold_corpus(unsigned seed) {
  Rng rng(seed);
  std::vector<SolveRecord> out;
  for (int trial = 0; trial < 40; ++trial) {
    const Problem p = random_lp(rng, 2 + trial % 5, 3 + trial % 6);
    const oic::lp::Result r = oic::lp::solve(p);
    SolveRecord rec;
    rec.status = r.status;
    rec.objective_bits = bits(r.objective);
    if (r.status == oic::lp::Status::kOptimal)
      for (std::size_t j = 0; j < r.x.size(); ++j)
        rec.x_bits.push_back(bits(r.x[j]));
    out.push_back(std::move(rec));
  }
  return out;
}

std::vector<SolveRecord> run_warm_sequence(unsigned seed) {
  // The MPC shape: one equality row patched per step, canonical seed
  // restarts via set_hot_rows, warm dual continuations in between.
  Rng rng(seed);
  Problem p(3);
  for (std::size_t j = 0; j < 3; ++j) {
    p.set_objective_coeff(j, rng.uniform(0.2, 1.0));
    p.set_bounds(j, -10.0, 10.0);
  }
  p.add_constraint(Vector{1, 0, 0}, Relation::kEqual, 0.0);
  p.add_constraint(Vector{1, 1, 0}, Relation::kLessEq, 4.0);
  p.add_constraint(Vector{0, 1, 1}, Relation::kGreaterEq, -4.0);

  PreparedProblem prep(p);
  prep.set_hot_rows({0});
  SolverWorkspace ws;
  PreparedProblem::WarmState warm;
  std::vector<SolveRecord> out;
  double x0 = -1.5;
  for (int k = 0; k < 300; ++k) {  // long enough to cross a refactor window
    x0 += rng.uniform(-0.3, 0.35);
    prep.set_rhs(0, x0);
    const oic::lp::Result r = prep.solve_warm(ws, warm);
    SolveRecord rec;
    rec.status = r.status;
    rec.objective_bits = bits(r.objective);
    if (r.status == oic::lp::Status::kOptimal)
      for (std::size_t j = 0; j < r.x.size(); ++j)
        rec.x_bits.push_back(bits(r.x[j]));
    out.push_back(std::move(rec));
  }
  return out;
}

TEST(SimplexIsaParity, ColdSolvesByteIdenticalAcrossIsa) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable; scalar-only build/CPU";
  IsaGuard guard;
  ASSERT_TRUE(simd::force(simd::Isa::kScalar));
  const auto scalar = run_cold_corpus(9001);
  ASSERT_TRUE(simd::force(simd::Isa::kAvx2));
  const auto avx2 = run_cold_corpus(9001);
  ASSERT_EQ(scalar.size(), avx2.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].status, avx2[i].status) << "trial " << i;
    EXPECT_EQ(scalar[i].objective_bits, avx2[i].objective_bits) << "trial " << i;
    EXPECT_EQ(scalar[i].x_bits, avx2[i].x_bits) << "trial " << i;
  }
}

TEST(SimplexIsaParity, WarmSeededSequenceByteIdenticalAcrossIsa) {
  if (!have_avx2()) GTEST_SKIP() << "AVX2 unavailable; scalar-only build/CPU";
  IsaGuard guard;
  ASSERT_TRUE(simd::force(simd::Isa::kScalar));
  const auto scalar = run_warm_sequence(9002);
  ASSERT_TRUE(simd::force(simd::Isa::kAvx2));
  const auto avx2 = run_warm_sequence(9002);
  ASSERT_EQ(scalar.size(), avx2.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].status, avx2[i].status) << "step " << i;
    EXPECT_EQ(scalar[i].objective_bits, avx2[i].objective_bits) << "step " << i;
    EXPECT_EQ(scalar[i].x_bits, avx2[i].x_bits) << "step " << i;
  }
}

TEST(SimplexIsaParity, WarmSequenceMatchesColdObjectives) {
  // Blocked/transposed warm engine vs the plain cold path: identical
  // statuses and (to LP tolerance) identical objectives at every step.
  Rng rng(9003);
  Problem p(3);
  for (std::size_t j = 0; j < 3; ++j) {
    p.set_objective_coeff(j, rng.uniform(0.2, 1.0));
    p.set_bounds(j, -10.0, 10.0);
  }
  p.add_constraint(Vector{1, 0, 0}, Relation::kEqual, 0.0);
  p.add_constraint(Vector{1, 1, 0}, Relation::kLessEq, 4.0);
  p.add_constraint(Vector{0, 1, 1}, Relation::kGreaterEq, -4.0);
  PreparedProblem warm_prep(p), cold_prep(p);
  warm_prep.set_hot_rows({0});
  SolverWorkspace ws_warm, ws_cold;
  PreparedProblem::WarmState warm;
  double x0 = 0.5;
  for (int k = 0; k < 300; ++k) {
    x0 += rng.uniform(-0.3, 0.3);
    warm_prep.set_rhs(0, x0);
    cold_prep.set_rhs(0, x0);
    const oic::lp::Result rw = warm_prep.solve_warm(ws_warm, warm);
    const oic::lp::Result rc = cold_prep.solve(ws_cold);
    ASSERT_EQ(rc.status, rw.status) << "step " << k;
    if (rc.status == oic::lp::Status::kOptimal) {
      EXPECT_NEAR(rc.objective, rw.objective, 1e-8) << "step " << k;
    }
  }
}

}  // namespace
