// Unit tests for oic::common - error macros, RNG determinism, statistics.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"

namespace {

using oic::Histogram;
using oic::Rng;

TEST(Error, RequireThrowsPrecondition) {
  EXPECT_THROW(OIC_REQUIRE(false, "boom"), oic::PreconditionError);
  EXPECT_NO_THROW(OIC_REQUIRE(true, "fine"));
}

TEST(Error, CheckThrowsInternal) {
  EXPECT_THROW(OIC_CHECK(false, "bug"), oic::InternalError);
  EXPECT_NO_THROW(OIC_CHECK(true, "fine"));
}

TEST(Error, MessageContainsContext) {
  try {
    OIC_REQUIRE(1 == 2, "my message");
    FAIL() << "expected throw";
  } catch (const oic::PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LE(x, 5.5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 2000; ++i) ++seen[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Rng, BernoulliRespectsProbabilityRoughly) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, UniformBoxDimensionsAndRanges) {
  Rng rng(3);
  const auto x = rng.uniform_box({0.0, -1.0}, {1.0, 1.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_GE(x[0], 0.0);
  EXPECT_LE(x[0], 1.0);
  EXPECT_GE(x[1], -1.0);
  EXPECT_LE(x[1], 1.0);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
  Rng parent1(99), parent2(99);
  Rng c1 = parent1.split();
  Rng c2 = parent2.split();
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(c1.uniform(0, 1), c2.uniform(0, 1));
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), oic::PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.5), oic::PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), oic::PreconditionError);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(oic::mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(oic::mean({}), 0.0);
  EXPECT_NEAR(oic::stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935, 1e-8);
  EXPECT_DOUBLE_EQ(oic::stddev({5.0}), 0.0);
}

TEST(Stats, MinMaxMedian) {
  EXPECT_DOUBLE_EQ(oic::min_of({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(oic::max_of({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(oic::median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(oic::median({4, 1, 2, 3}), 2.5);
  EXPECT_THROW(oic::median({}), oic::PreconditionError);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 0.6, 6);
  h.add(0.05);   // bucket 0
  h.add(0.15);   // bucket 1
  h.add(0.15);   // bucket 1
  h.add(-0.3);   // clamps to bucket 0
  h.add(0.99);   // clamps to bucket 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, LabelsMatchPaperStyle) {
  Histogram h(0.0, 0.6, 6);
  EXPECT_EQ(h.label(0, true), "0%-10%");
  EXPECT_EQ(h.label(5, true), "50%-60%");
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 0.0, 3), oic::PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), oic::PreconditionError);
}

}  // namespace
