// Unit tests for oic::common - error macros, RNG determinism, statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"

namespace {

using oic::Histogram;
using oic::Rng;

TEST(Error, RequireThrowsPrecondition) {
  EXPECT_THROW(OIC_REQUIRE(false, "boom"), oic::PreconditionError);
  EXPECT_NO_THROW(OIC_REQUIRE(true, "fine"));
}

TEST(Error, CheckThrowsInternal) {
  EXPECT_THROW(OIC_CHECK(false, "bug"), oic::InternalError);
  EXPECT_NO_THROW(OIC_CHECK(true, "fine"));
}

TEST(Error, MessageContainsContext) {
  try {
    OIC_REQUIRE(1 == 2, "my message");
    FAIL() << "expected throw";
  } catch (const oic::PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("my message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LE(x, 5.5);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 2000; ++i) ++seen[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(Rng, BernoulliRespectsProbabilityRoughly) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, UniformBoxDimensionsAndRanges) {
  Rng rng(3);
  const auto x = rng.uniform_box({0.0, -1.0}, {1.0, 1.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_GE(x[0], 0.0);
  EXPECT_LE(x[0], 1.0);
  EXPECT_GE(x[1], -1.0);
  EXPECT_LE(x[1], 1.0);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic) {
  Rng parent1(99), parent2(99);
  Rng c1 = parent1.split();
  Rng c2 = parent2.split();
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(c1.uniform(0, 1), c2.uniform(0, 1));
}

TEST(Rng, SplitmixReferenceVectorsPinTheStream) {
  // The splitmix64 outputs for state 0 are published reference values
  // (Vigna's splitmix64.c).  Campaign checkpoints and every committed
  // golden derived from Rng::split() depend on exactly this stream; a
  // change here invalidates them all, so pin it hard.
  std::uint64_t state = 0;
  EXPECT_EQ(oic::splitmix64(state), 0xe220a8397b1dcdafull);
  EXPECT_EQ(oic::splitmix64(state), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(oic::splitmix64(state), 0x06c45d188009454full);
  // derive_stream is splitmix64 evaluated at seed + (index + 1) * gamma:
  // substream 0 of seed 0 equals the first splitmix64 output of state 0.
  EXPECT_EQ(oic::derive_stream(0, 0), 0xe220a8397b1dcdafull);
  EXPECT_NE(oic::derive_stream(0, 1), oic::derive_stream(0, 0));
  EXPECT_NE(oic::derive_stream(1, 0), oic::derive_stream(0, 0));
}

TEST(Rng, SplitDoesNotPerturbTheParentDrawStream) {
  // Splitting derives children from a dedicated splitmix64 stream; the
  // parent's own sampling sequence must be unaffected (campaigns split
  // once per episode and still expect the parent's draws to be stable).
  Rng a(123), b(123);
  (void)a.split();
  (void)a.split();
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, AdjacentGrandchildStreamsAreDecorrelated) {
  // The regression the splitmix64 derivation fixes: children of adjacent
  // children must not share correlated seeds.  Draw the first value of
  // grandchild streams across a grid of (child, grandchild) indices; all
  // must be distinct.
  Rng master(20200406);
  std::vector<double> firsts;
  for (int c = 0; c < 32; ++c) {
    Rng child = master.split();
    for (int g = 0; g < 4; ++g) {
      Rng grandchild = child.split();
      firsts.push_back(grandchild.uniform(0, 1));
    }
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_TRUE(std::adjacent_find(firsts.begin(), firsts.end()) == firsts.end())
      << "grandchild streams collided";
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), oic::PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.5), oic::PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), oic::PreconditionError);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(oic::mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(oic::mean({}), 0.0);
  EXPECT_NEAR(oic::stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935, 1e-8);
  EXPECT_DOUBLE_EQ(oic::stddev({5.0}), 0.0);
}

TEST(Stats, MinMaxMedian) {
  EXPECT_DOUBLE_EQ(oic::min_of({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(oic::max_of({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(oic::median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(oic::median({4, 1, 2, 3}), 2.5);
  EXPECT_THROW(oic::median({}), oic::PreconditionError);
}

TEST(Welford, MatchesBatchStatisticsExactlyEnough) {
  oic::Rng rng(5);
  std::vector<double> xs;
  oic::Welford w;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.uniform(-3.0, 7.0));
    w.add(xs.back());
  }
  EXPECT_EQ(w.count(), 500u);
  EXPECT_NEAR(w.mean(), oic::mean(xs), 1e-12);
  EXPECT_NEAR(w.stddev(), oic::stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), oic::min_of(xs));
  EXPECT_DOUBLE_EQ(w.max(), oic::max_of(xs));
}

TEST(Welford, EmptyAndSingleSampleEdges) {
  oic::Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_THROW(w.min(), oic::PreconditionError);
  w.add(2.5);
  EXPECT_DOUBLE_EQ(w.mean(), 2.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.5);
  EXPECT_DOUBLE_EQ(w.max(), 2.5);
}

TEST(Welford, MergeEqualsConcatenatedStream) {
  oic::Rng rng(9);
  oic::Welford a, b, whole;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(1.0, 2.0);
    (i < 37 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  // Merging an empty accumulator in either direction is the identity.
  oic::Welford empty;
  const double before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), before);
  oic::Welford fresh;
  fresh.merge(a);
  EXPECT_EQ(fresh.count(), a.count());
  EXPECT_DOUBLE_EQ(fresh.mean(), a.mean());
}

TEST(Welford, RestoreRoundTripsState) {
  oic::Welford w;
  for (double x : {1.0, 4.0, -2.0, 0.5}) w.add(x);
  const oic::Welford restored(w.count(), w.mean(), w.m2(), w.min(), w.max());
  EXPECT_EQ(restored.count(), w.count());
  EXPECT_DOUBLE_EQ(restored.mean(), w.mean());
  EXPECT_DOUBLE_EQ(restored.m2(), w.m2());
  EXPECT_DOUBLE_EQ(restored.min(), w.min());
  EXPECT_DOUBLE_EQ(restored.max(), w.max());
  EXPECT_THROW(oic::Welford(2, 0.0, -1.0, 0.0, 1.0), oic::PreconditionError);
  EXPECT_THROW(oic::Welford(2, 0.0, 1.0, 2.0, 1.0), oic::PreconditionError);
}

TEST(Intervals, WilsonKnownValuesAndEdges) {
  // 0 successes out of n still has a strictly positive upper bound of
  // order z^2 / n -- the "no violations observed" statement campaigns
  // report.
  const auto zero = oic::wilson_interval(0, 10000);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const double z2 = oic::kZ95 * oic::kZ95;
  EXPECT_NEAR(zero.hi, z2 / (10000.0 + z2), 1e-12);  // closed form for k = 0
  // All successes mirror to a lower bound below 1.
  const auto all = oic::wilson_interval(10000, 10000);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
  // Half: symmetric around 0.5, textbook width.
  const auto half = oic::wilson_interval(50, 100);
  EXPECT_NEAR(0.5 * (half.lo + half.hi), 0.5, 1e-12);
  EXPECT_NEAR(half.hi - half.lo, 0.19, 0.01);
  EXPECT_THROW(oic::wilson_interval(1, 0), oic::PreconditionError);
  EXPECT_THROW(oic::wilson_interval(3, 2), oic::PreconditionError);
  // Zero trials carry no information: the vacuous interval, not a throw
  // (splitting reports it when a stage goes extinct before any trial ran).
  const auto none = oic::wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
  // One trial, no hit: lo pinned at 0, hi = z^2 / (1 + z^2) exactly.
  const auto miss1 = oic::wilson_interval(0, 1);
  EXPECT_DOUBLE_EQ(miss1.lo, 0.0);
  EXPECT_NEAR(miss1.hi, z2 / (1.0 + z2), 1e-15);
  // One trial, one hit: the mirror image.
  const auto hit1 = oic::wilson_interval(1, 1);
  EXPECT_DOUBLE_EQ(hit1.hi, 1.0);
  EXPECT_NEAR(hit1.lo, 1.0 / (1.0 + z2), 1e-15);
  EXPECT_NEAR(hit1.lo, 1.0 - miss1.hi, 1e-15);
}

TEST(Intervals, NormalIntervalShrinksWithN) {
  oic::Welford small, large;
  oic::Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    if (i < 100) small.add(x);
    large.add(x);
  }
  const auto ci_small = oic::normal_interval(small);
  const auto ci_large = oic::normal_interval(large);
  EXPECT_LT(ci_large.width(), ci_small.width());
  EXPECT_NEAR(ci_large.width(), 2.0 * 1.96 / 100.0, 2e-3);  // 2 z sigma / sqrt(n)
  oic::Welford one;
  one.add(3.0);
  const auto ci_one = oic::normal_interval(one);
  EXPECT_DOUBLE_EQ(ci_one.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci_one.hi, 3.0);
  EXPECT_THROW(oic::normal_interval(oic::Welford()), oic::PreconditionError);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 0.6, 6);
  h.add(0.05);   // bucket 0
  h.add(0.15);   // bucket 1
  h.add(0.15);   // bucket 1
  h.add(-0.3);   // clamps to bucket 0
  h.add(0.99);   // clamps to bucket 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, LabelsMatchPaperStyle) {
  Histogram h(0.0, 0.6, 6);
  EXPECT_EQ(h.label(0, true), "0%-10%");
  EXPECT_EQ(h.label(5, true), "50%-60%");
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 0.0, 3), oic::PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), oic::PreconditionError);
}

}  // namespace
