// Accept/reject enumeration of the policy spec grammar
// (eval/policy_spec.hpp) -- the one token grammar every surface shares:
// the oic_eval/oic_mc/oic_train CLIs, the `oic-serve v1` open request, and
// make_policy.  parse_policy_spec is pure string classification (no
// filesystem), so the reject cases must hold even for drl: paths that do
// not exist; make_policy additionally materializes, so its drl: case is
// where a missing file becomes an error.

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "eval/policy_spec.hpp"

namespace {

using oic::eval::parse_policy_spec;
using oic::eval::PolicySpec;

TEST(PolicySpec, AcceptsEveryDocumentedForm) {
  PolicySpec s = parse_policy_spec("always-run");
  EXPECT_EQ(s.kind, PolicySpec::Kind::kAlwaysRun);
  EXPECT_EQ(s.text, "always-run");

  s = parse_policy_spec("bang-bang");
  EXPECT_EQ(s.kind, PolicySpec::Kind::kBangBang);

  s = parse_policy_spec("periodic-1");
  EXPECT_EQ(s.kind, PolicySpec::Kind::kPeriodic);
  EXPECT_EQ(s.count, 1u);

  s = parse_policy_spec("periodic-12");
  EXPECT_EQ(s.kind, PolicySpec::Kind::kPeriodic);
  EXPECT_EQ(s.count, 12u);

  // Nine digits is the documented ceiling of the count payload.
  s = parse_policy_spec("periodic-999999999");
  EXPECT_EQ(s.count, 999999999u);

  s = parse_policy_spec("burst:1");
  EXPECT_EQ(s.kind, PolicySpec::Kind::kBurst);
  EXPECT_EQ(s.count, 1u);

  s = parse_policy_spec("burst:4");
  EXPECT_EQ(s.kind, PolicySpec::Kind::kBurst);
  EXPECT_EQ(s.count, 4u);

  // drl: accepts any non-empty path without touching the filesystem.
  s = parse_policy_spec("drl:/no/such/file.agent");
  EXPECT_EQ(s.kind, PolicySpec::Kind::kDrl);
  EXPECT_EQ(s.path, "/no/such/file.agent");

  s = parse_policy_spec("drl:relative/agent.txt");
  EXPECT_EQ(s.path, "relative/agent.txt");
}

TEST(PolicySpec, RejectsEveryMalformedForm) {
  const char* bad[] = {
      "",                      // empty
      "always",                // prefix of a known spec
      "Bang-Bang",             // grammar is case-sensitive
      "periodic",              // missing -N payload
      "periodic-",             // empty period
      "periodic-0",            // period must be >= 1
      "periodic-x",            // non-numeric period
      "periodic--3",           // sign is not a digit (strtoul would wrap it)
      "periodic-+3",           // likewise
      "periodic-3x",           // trailing junk
      "periodic-1000000000",   // ten digits: over the payload ceiling
      "burst",                 // missing :<k>
      "burst:",                // empty depth
      "burst:0",               // depth must be >= 1
      "burst:-2",              // negative depth
      "burst:two",             // non-numeric depth
      "drl:",                  // missing path
      "nonesuch",              // unknown policy
      "bang bang",             // specs are single whitespace-free tokens
      "periodic 3",            // likewise
      "bang-bang\n",           // embedded newline
      "drl:a b",               // whitespace inside the path
  };
  for (const char* spec : bad) {
    EXPECT_THROW(parse_policy_spec(spec), oic::PreconditionError)
        << "spec '" << spec << "' should reject";
  }
}

TEST(PolicySpec, MakePolicyMaterializesAndPropagatesErrors) {
  EXPECT_NE(oic::eval::make_policy("always-run"), nullptr);
  EXPECT_NE(oic::eval::make_policy("bang-bang"), nullptr);
  EXPECT_NE(oic::eval::make_policy("periodic-3"), nullptr);
  EXPECT_NE(oic::eval::make_policy("burst:2"), nullptr);
  // Grammar errors and unloadable agents surface the same way, with the
  // offending spec named in the message.
  EXPECT_THROW(oic::eval::make_policy("periodic-0"), oic::PreconditionError);
  try {
    oic::eval::make_policy("drl:/no/such/file.agent");
    FAIL() << "missing agent file should reject";
  } catch (const oic::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("drl:/no/such/file.agent"),
              std::string::npos);
  }
}

}  // namespace
