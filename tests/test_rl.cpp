// Tests for the RL substrate: MLP forward/backward (with numerical
// gradient checks), optimizers, replay buffer, epsilon schedule.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "rl/dqn.hpp"
#include "rl/mlp.hpp"
#include "rl/optimizer.hpp"
#include "rl/replay.hpp"

namespace {

using oic::Rng;
using oic::linalg::Vector;
using oic::rl::ForwardCache;
using oic::rl::Gradients;
using oic::rl::Mlp;

TEST(Mlp, OutputShapeAndDeterminism) {
  Rng rng(3);
  Mlp net({3, 8, 2}, rng);
  const Vector out1 = net.forward(Vector{0.1, -0.2, 0.3});
  const Vector out2 = net.forward(Vector{0.1, -0.2, 0.3});
  ASSERT_EQ(out1.size(), 2u);
  EXPECT_TRUE(approx_equal(out1, out2, 0.0));
}

TEST(Mlp, ForwardCachedMatchesForward) {
  Rng rng(4);
  Mlp net({4, 16, 16, 3}, rng);
  const Vector in{0.5, -1.0, 2.0, 0.0};
  ForwardCache cache;
  EXPECT_TRUE(approx_equal(net.forward(in), net.forward_cached(in, cache), 1e-14));
  EXPECT_EQ(cache.pre.size(), 3u);
  EXPECT_EQ(cache.post.size(), 4u);
}

TEST(Mlp, NumParamsCountsEverything) {
  Rng rng(5);
  Mlp net({3, 8, 2}, rng);
  EXPECT_EQ(net.num_params(), 3u * 8 + 8 + 8 * 2 + 2);
}

TEST(Mlp, CopyFromMakesNetsIdentical) {
  Rng rng(6);
  Mlp a({2, 4, 1}, rng);
  Mlp b({2, 4, 1}, rng);
  const Vector in{0.3, -0.7};
  EXPECT_FALSE(approx_equal(a.forward(in), b.forward(in), 1e-12));
  b.copy_from(a);
  EXPECT_TRUE(approx_equal(a.forward(in), b.forward(in), 0.0));
}

TEST(Mlp, SoftUpdateInterpolates) {
  Rng rng(7);
  Mlp a({1, 2, 1}, rng);
  Mlp b({1, 2, 1}, rng);
  Mlp b0({1, 2, 1}, rng);
  b0.copy_from(b);
  b.soft_update_from(a, 1.0);  // tau = 1: full copy
  const Vector in{0.5};
  EXPECT_TRUE(approx_equal(b.forward(in), a.forward(in), 1e-14));
  b.copy_from(b0);
  b.soft_update_from(a, 0.0);  // tau = 0: unchanged
  EXPECT_TRUE(approx_equal(b.forward(in), b0.forward(in), 1e-14));
}

// Finite-difference gradient check across several architectures/seeds.
class MlpGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(MlpGradCheck, BackwardMatchesFiniteDifferences) {
  Rng rng{static_cast<std::uint64_t>(GetParam() * 1299709 + 19)};
  const std::vector<std::size_t> archs[] = {
      {2, 5, 1}, {3, 4, 4, 2}, {1, 8, 3}, {4, 6, 2}};
  Mlp net(archs[GetParam() % 4], rng);

  Vector in(net.sizes().front());
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1.5, 1.5);
  Vector dout(net.sizes().back());
  for (std::size_t i = 0; i < dout.size(); ++i) dout[i] = rng.uniform(-1, 1);

  // Loss = dout . f(in); analytic parameter gradient via backward.
  ForwardCache cache;
  net.forward_cached(in, cache);
  const Gradients g = net.backward(cache, dout);

  const double eps = 1e-6;
  // Spot-check a handful of coordinates in every layer.
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    for (int probe = 0; probe < 4; ++probe) {
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(net.weight(l).rows()) - 1));
      const std::size_t j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(net.weight(l).cols()) - 1));
      Mlp pert = net;
      pert.weight(l)(i, j) += eps;
      const double up = dot(dout, pert.forward(in));
      pert.weight(l)(i, j) -= 2 * eps;
      const double dn = dot(dout, pert.forward(in));
      const double fd = (up - dn) / (2 * eps);
      EXPECT_NEAR(g.dw[l](i, j), fd, 1e-4)
          << "layer " << l << " weight (" << i << "," << j << ")";
    }
    const std::size_t bi =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(net.bias(l).size()) - 1));
    Mlp pert = net;
    pert.bias(l)[bi] += eps;
    const double up = dot(dout, pert.forward(in));
    pert.bias(l)[bi] -= 2 * eps;
    const double dn = dot(dout, pert.forward(in));
    EXPECT_NEAR(g.db[l][bi], (up - dn) / (2 * eps), 1e-4) << "layer " << l << " bias";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlpGradCheck, ::testing::Range(0, 12));

TEST(Optimizers, SgdReducesQuadraticLoss) {
  // Fit y = 2x with a linear net (no hidden ReLU nonlinearity on output).
  Rng rng(11);
  Mlp net({1, 1}, rng);
  oic::rl::Sgd opt(0.1);
  for (int it = 0; it < 200; ++it) {
    ForwardCache cache;
    const Vector pred = net.forward_cached(Vector{1.0}, cache);
    const double err = pred[0] - 2.0;
    opt.step(net, net.backward(cache, Vector{err}));
  }
  EXPECT_NEAR(net.forward(Vector{1.0})[0], 2.0, 1e-3);
}

TEST(Optimizers, AdamFitsSmallRegression) {
  // Fit y = sin-ish table with a small net; the loss must fall
  // substantially from its initial value.
  Rng rng(13);
  Mlp net({1, 16, 1}, rng);
  oic::rl::Adam opt(5e-3);
  const double xs[] = {-1.0, -0.5, 0.0, 0.5, 1.0};
  const double ys[] = {-0.8, -0.45, 0.0, 0.45, 0.8};
  auto loss = [&]() {
    double s = 0.0;
    for (int i = 0; i < 5; ++i) {
      const double e = net.forward(Vector{xs[i]})[0] - ys[i];
      s += e * e;
    }
    return s;
  };
  const double initial = loss();
  for (int it = 0; it < 500; ++it) {
    Gradients g = net.zero_gradients();
    for (int i = 0; i < 5; ++i) {
      ForwardCache cache;
      const Vector pred = net.forward_cached(Vector{xs[i]}, cache);
      g.add(net.backward(cache, Vector{pred[0] - ys[i]}));
    }
    g.scale(1.0 / 5.0);
    opt.step(net, g);
  }
  EXPECT_LT(loss(), 0.05 * initial);
}

TEST(Replay, RingBufferOverwritesOldest) {
  oic::rl::ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) {
    oic::rl::Transition t;
    t.state = Vector{static_cast<double>(i)};
    t.next_state = Vector{0.0};
    buf.add(std::move(t));
  }
  EXPECT_EQ(buf.size(), 3u);
  // Entries 2, 3, 4 remain in some slot order.
  std::vector<double> seen;
  for (std::size_t i = 0; i < buf.size(); ++i) seen.push_back(buf.at(i).state[0]);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(Replay, SampleReturnsStoredPointers) {
  oic::rl::ReplayBuffer buf(10);
  oic::rl::Transition t;
  t.state = Vector{7.0};
  t.next_state = Vector{8.0};
  buf.add(t);
  Rng rng(1);
  const auto batch = buf.sample(4, rng);
  ASSERT_EQ(batch.size(), 4u);
  for (const auto* p : batch) EXPECT_DOUBLE_EQ(p->state[0], 7.0);
}

TEST(Replay, EmptySampleThrows) {
  oic::rl::ReplayBuffer buf(4);
  Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), oic::PreconditionError);
}

TEST(Epsilon, LinearDecaySaturates) {
  oic::rl::EpsilonSchedule sched(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(sched.at(0), 1.0);
  EXPECT_NEAR(sched.at(50), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(sched.at(100), 0.1);
  EXPECT_DOUBLE_EQ(sched.at(1000), 0.1);
}

}  // namespace
