// Tests for the RL substrate: MLP forward/backward (with numerical
// gradient checks), optimizers, replay buffer, epsilon schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/random.hpp"
#include "rl/dqn.hpp"
#include "rl/mlp.hpp"
#include "rl/optimizer.hpp"
#include "rl/replay.hpp"

namespace {

using oic::Rng;
using oic::linalg::Vector;
using oic::rl::ForwardCache;
using oic::rl::Gradients;
using oic::rl::Mlp;

TEST(Mlp, OutputShapeAndDeterminism) {
  Rng rng(3);
  Mlp net({3, 8, 2}, rng);
  const Vector out1 = net.forward(Vector{0.1, -0.2, 0.3});
  const Vector out2 = net.forward(Vector{0.1, -0.2, 0.3});
  ASSERT_EQ(out1.size(), 2u);
  EXPECT_TRUE(approx_equal(out1, out2, 0.0));
}

TEST(Mlp, ForwardCachedMatchesForward) {
  Rng rng(4);
  Mlp net({4, 16, 16, 3}, rng);
  const Vector in{0.5, -1.0, 2.0, 0.0};
  ForwardCache cache;
  EXPECT_TRUE(approx_equal(net.forward(in), net.forward_cached(in, cache), 1e-14));
  EXPECT_EQ(cache.pre.size(), 3u);
  EXPECT_EQ(cache.post.size(), 4u);
}

TEST(Mlp, NumParamsCountsEverything) {
  Rng rng(5);
  Mlp net({3, 8, 2}, rng);
  EXPECT_EQ(net.num_params(), 3u * 8 + 8 + 8 * 2 + 2);
}

TEST(Mlp, CopyFromMakesNetsIdentical) {
  Rng rng(6);
  Mlp a({2, 4, 1}, rng);
  Mlp b({2, 4, 1}, rng);
  const Vector in{0.3, -0.7};
  EXPECT_FALSE(approx_equal(a.forward(in), b.forward(in), 1e-12));
  b.copy_from(a);
  EXPECT_TRUE(approx_equal(a.forward(in), b.forward(in), 0.0));
}

TEST(Mlp, SoftUpdateInterpolates) {
  Rng rng(7);
  Mlp a({1, 2, 1}, rng);
  Mlp b({1, 2, 1}, rng);
  Mlp b0({1, 2, 1}, rng);
  b0.copy_from(b);
  b.soft_update_from(a, 1.0);  // tau = 1: full copy
  const Vector in{0.5};
  EXPECT_TRUE(approx_equal(b.forward(in), a.forward(in), 1e-14));
  b.copy_from(b0);
  b.soft_update_from(a, 0.0);  // tau = 0: unchanged
  EXPECT_TRUE(approx_equal(b.forward(in), b0.forward(in), 1e-14));
}

// Finite-difference gradient check across several architectures/seeds.
class MlpGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(MlpGradCheck, BackwardMatchesFiniteDifferences) {
  Rng rng{static_cast<std::uint64_t>(GetParam() * 1299709 + 19)};
  const std::vector<std::size_t> archs[] = {
      {2, 5, 1}, {3, 4, 4, 2}, {1, 8, 3}, {4, 6, 2}};
  Mlp net(archs[GetParam() % 4], rng);

  Vector in(net.sizes().front());
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1.5, 1.5);
  Vector dout(net.sizes().back());
  for (std::size_t i = 0; i < dout.size(); ++i) dout[i] = rng.uniform(-1, 1);

  // Loss = dout . f(in); analytic parameter gradient via backward.
  ForwardCache cache;
  net.forward_cached(in, cache);
  const Gradients g = net.backward(cache, dout);

  const double eps = 1e-6;
  // Spot-check a handful of coordinates in every layer.
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    for (int probe = 0; probe < 4; ++probe) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(net.weight(l).rows()) - 1));
      const std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(net.weight(l).cols()) - 1));
      Mlp pert = net;
      pert.weight(l)(i, j) += eps;
      const double up = dot(dout, pert.forward(in));
      pert.weight(l)(i, j) -= 2 * eps;
      const double dn = dot(dout, pert.forward(in));
      const double fd = (up - dn) / (2 * eps);
      EXPECT_NEAR(g.dw[l](i, j), fd, 1e-4)
          << "layer " << l << " weight (" << i << "," << j << ")";
    }
    const std::size_t bi = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(net.bias(l).size()) - 1));
    Mlp pert = net;
    pert.bias(l)[bi] += eps;
    const double up = dot(dout, pert.forward(in));
    pert.bias(l)[bi] -= 2 * eps;
    const double dn = dot(dout, pert.forward(in));
    EXPECT_NEAR(g.db[l][bi], (up - dn) / (2 * eps), 1e-4) << "layer " << l << " bias";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlpGradCheck, ::testing::Range(0, 12));

TEST(Optimizers, SgdReducesQuadraticLoss) {
  // Fit y = 2x with a linear net (no hidden ReLU nonlinearity on output).
  Rng rng(11);
  Mlp net({1, 1}, rng);
  oic::rl::Sgd opt(0.1);
  for (int it = 0; it < 200; ++it) {
    ForwardCache cache;
    const Vector pred = net.forward_cached(Vector{1.0}, cache);
    const double err = pred[0] - 2.0;
    opt.step(net, net.backward(cache, Vector{err}));
  }
  EXPECT_NEAR(net.forward(Vector{1.0})[0], 2.0, 1e-3);
}

TEST(Optimizers, AdamFitsSmallRegression) {
  // Fit y = sin-ish table with a small net; the loss must fall
  // substantially from its initial value.
  Rng rng(13);
  Mlp net({1, 16, 1}, rng);
  oic::rl::Adam opt(5e-3);
  const double xs[] = {-1.0, -0.5, 0.0, 0.5, 1.0};
  const double ys[] = {-0.8, -0.45, 0.0, 0.45, 0.8};
  auto loss = [&]() {
    double s = 0.0;
    for (int i = 0; i < 5; ++i) {
      const double e = net.forward(Vector{xs[i]})[0] - ys[i];
      s += e * e;
    }
    return s;
  };
  const double initial = loss();
  for (int it = 0; it < 500; ++it) {
    Gradients g = net.zero_gradients();
    for (int i = 0; i < 5; ++i) {
      ForwardCache cache;
      const Vector pred = net.forward_cached(Vector{xs[i]}, cache);
      g.add(net.backward(cache, Vector{pred[0] - ys[i]}));
    }
    g.scale(1.0 / 5.0);
    opt.step(net, g);
  }
  EXPECT_LT(loss(), 0.05 * initial);
}

TEST(Replay, RingBufferOverwritesOldest) {
  oic::rl::ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) {
    oic::rl::Transition t;
    t.state = Vector{static_cast<double>(i)};
    t.next_state = Vector{0.0};
    buf.add(std::move(t));
  }
  EXPECT_EQ(buf.size(), 3u);
  // Entries 2, 3, 4 remain in some slot order.
  std::vector<double> seen;
  for (std::size_t i = 0; i < buf.size(); ++i) seen.push_back(buf.at(i).state[0]);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(Replay, SampleReturnsStoredPointers) {
  oic::rl::ReplayBuffer buf(10);
  oic::rl::Transition t;
  t.state = Vector{7.0};
  t.next_state = Vector{8.0};
  buf.add(t);
  Rng rng(1);
  const auto batch = buf.sample(4, rng);
  ASSERT_EQ(batch.size(), 4u);
  for (const auto* p : batch) EXPECT_DOUBLE_EQ(p->state[0], 7.0);
}

TEST(Replay, EmptySampleThrows) {
  oic::rl::ReplayBuffer buf(4);
  Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), oic::PreconditionError);
}

TEST(Replay, WraparoundOverwritesInInsertionOrder) {
  // The ring's head walks slot 0, 1, 2, 0, 1, ...: after 8 adds into
  // capacity 3, slot k holds the latest entry whose index is congruent to
  // k mod 3 -- pinning the wraparound arithmetic, not just the surviving
  // set.
  oic::rl::ReplayBuffer buf(3);
  for (int i = 0; i < 8; ++i) {
    oic::rl::Transition t;
    t.state = Vector{static_cast<double>(i)};
    t.next_state = Vector{0.0};
    buf.add(std::move(t));
    EXPECT_EQ(buf.size(), std::min<std::size_t>(static_cast<std::size_t>(i) + 1, 3u));
  }
  EXPECT_DOUBLE_EQ(buf.at(0).state[0], 6.0);
  EXPECT_DOUBLE_EQ(buf.at(1).state[0], 7.0);
  EXPECT_DOUBLE_EQ(buf.at(2).state[0], 5.0);
  EXPECT_THROW(buf.at(3), oic::PreconditionError);
}

TEST(Replay, CapacityOneAlwaysHoldsTheLatest) {
  oic::rl::ReplayBuffer buf(1);
  EXPECT_EQ(buf.capacity(), 1u);
  for (int i = 0; i < 4; ++i) {
    oic::rl::Transition t;
    t.state = Vector{static_cast<double>(i)};
    t.next_state = Vector{0.0};
    buf.add(std::move(t));
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_DOUBLE_EQ(buf.at(0).state[0], static_cast<double>(i));
  }
  Rng rng(3);
  for (const auto* p : buf.sample(5, rng)) EXPECT_DOUBLE_EQ(p->state[0], 3.0);
  EXPECT_THROW(oic::rl::ReplayBuffer(0), oic::PreconditionError);
}

TEST(Replay, SamplingIsDeterministicGivenTheRngAndUsesTheWholeBuffer) {
  oic::rl::ReplayBuffer buf(16);
  for (int i = 0; i < 16; ++i) {
    oic::rl::Transition t;
    t.state = Vector{static_cast<double>(i)};
    t.next_state = Vector{0.0};
    buf.add(std::move(t));
  }
  const auto draw = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> out;
    for (const auto* p : buf.sample(64, rng)) out.push_back(p->state[0]);
    return out;
  };
  const auto a = draw(42);
  EXPECT_EQ(a, draw(42));       // same seed, same indices
  EXPECT_NE(a, draw(43));       // another stream differs
  // Uniform-with-replacement over 64 draws from 16 slots: every draw must
  // be a stored value, and more than one distinct slot must appear.
  std::vector<double> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GE(sorted.front(), 0.0);
  EXPECT_LE(sorted.back(), 15.0);
  EXPECT_GT(std::unique(sorted.begin(), sorted.end()) - sorted.begin(), 4);
}

TEST(Epsilon, LinearDecaySaturates) {
  oic::rl::EpsilonSchedule sched(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(sched.at(0), 1.0);
  EXPECT_NEAR(sched.at(50), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(sched.at(100), 0.1);
  EXPECT_DOUBLE_EQ(sched.at(1000), 0.1);
}

TEST(Epsilon, BoundaryBehavior) {
  // The step BEFORE decay_steps still interpolates; decay_steps itself is
  // saturated (at() is right-continuous at the knee).
  oic::rl::EpsilonSchedule sched(1.0, 0.0, 4);
  EXPECT_DOUBLE_EQ(sched.at(3), 0.25);
  EXPECT_DOUBLE_EQ(sched.at(4), 0.0);

  // decay_steps = 1 is the steepest legal schedule: start at 0, end from 1.
  oic::rl::EpsilonSchedule step(0.8, 0.2, 1);
  EXPECT_DOUBLE_EQ(step.at(0), 0.8);
  EXPECT_DOUBLE_EQ(step.at(1), 0.2);

  // A flat schedule is legal and constant.
  oic::rl::EpsilonSchedule flat(0.3, 0.3, 10);
  EXPECT_DOUBLE_EQ(flat.at(0), 0.3);
  EXPECT_DOUBLE_EQ(flat.at(5), 0.3);
  EXPECT_DOUBLE_EQ(flat.at(100), 0.3);

  // Rising schedules (end > start) are allowed -- "epsilon warmup".
  oic::rl::EpsilonSchedule rising(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(rising.at(1), 0.5);

  EXPECT_THROW(oic::rl::EpsilonSchedule(1.5, 0.1, 10), oic::PreconditionError);
  EXPECT_THROW(oic::rl::EpsilonSchedule(1.0, -0.1, 10), oic::PreconditionError);
  EXPECT_THROW(oic::rl::EpsilonSchedule(1.0, 0.1, 0), oic::PreconditionError);
}

TEST(Mlp, BatchedForwardMatchesPerSampleBitwise) {
  Rng rng(21);
  Mlp net({5, 32, 32, 3}, rng);
  const std::size_t batch = 17;
  oic::linalg::Matrix in(batch, 5);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t c = 0; c < 5; ++c) in(r, c) = rng.uniform(-2.0, 2.0);
  }
  oic::rl::BatchWorkspace ws;
  const auto& out = net.forward_batch_into(in, ws);
  oic::rl::BatchForwardCache cache;
  const auto& out_cached = net.forward_batch_cached(in, cache);
  ASSERT_EQ(out.rows(), batch);
  ASSERT_EQ(out.cols(), 3u);
  for (std::size_t r = 0; r < batch; ++r) {
    const Vector ref = net.forward(in.row(r));
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(out(r, c), ref[c]) << "row " << r;
      EXPECT_EQ(out_cached(r, c), ref[c]) << "row " << r;
    }
  }
}

TEST(Mlp, BatchedBackwardMatchesPerSampleAccumulationBitwise) {
  Rng rng(22);
  Mlp net({4, 16, 2}, rng);
  const std::size_t batch = 9;
  oic::linalg::Matrix in(batch, 4);
  oic::linalg::Matrix dout(batch, 2);
  for (std::size_t r = 0; r < batch; ++r) {
    for (std::size_t c = 0; c < 4; ++c) in(r, c) = rng.uniform(-1.0, 1.0);
    // Sparse rows like the TD loss: one nonzero entry per sample.
    dout(r, r % 2) = rng.uniform(-1.0, 1.0);
  }

  // Per-sample reference: backward each row, add in row order.
  Gradients ref = net.zero_gradients();
  for (std::size_t r = 0; r < batch; ++r) {
    ForwardCache cache;
    net.forward_cached(in.row(r), cache);
    ref.add(net.backward(cache, dout.row(r)));
  }

  oic::rl::BatchForwardCache bcache;
  net.forward_batch_cached(in, bcache);
  Gradients got = net.zero_gradients();
  oic::rl::BatchWorkspace ws;
  net.backward_batch(bcache, dout, ws, got);

  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    for (std::size_t i = 0; i < ref.dw[l].rows(); ++i) {
      for (std::size_t j = 0; j < ref.dw[l].cols(); ++j) {
        EXPECT_EQ(ref.dw[l](i, j), got.dw[l](i, j)) << "layer " << l;
      }
    }
    for (std::size_t i = 0; i < ref.db[l].size(); ++i) {
      EXPECT_EQ(ref.db[l][i], got.db[l][i]) << "layer " << l;
    }
  }
}

}  // namespace
