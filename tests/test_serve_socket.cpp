// Tests for the serve layer's socket transport (src/serve/socket.hpp):
// the loopback SocketListener/SocketClient pair must answer byte-for-byte
// what the in-process Service answers for the same request stream, and a
// connection feeding the server garbage must die alone -- the listener,
// the tick thread, and every other connection keep serving.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "eval/registry.hpp"
#include "serve/api.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/socket.hpp"

namespace {

using oic::serve::Request;
using oic::serve::Response;

Request open_req(std::uint64_t ref, std::uint64_t sid, std::string plant,
                 std::string policy) {
  Request r;
  r.kind = Request::Kind::kOpen;
  r.ref = ref;
  r.session = sid;
  r.plant = std::move(plant);
  r.policy = std::move(policy);
  return r;
}

Request decide_req(std::uint64_t ref, std::uint64_t sid,
                   const std::vector<double>& x) {
  Request r;
  r.kind = Request::Kind::kDecide;
  r.ref = ref;
  r.session = sid;
  r.x.data() = x;
  return r;
}

Request decide_req(std::uint64_t ref, std::uint64_t sid,
                   const std::vector<double>& u, const std::vector<double>& x) {
  Request r = decide_req(ref, sid, x);
  r.has_u = true;
  r.u.data() = u;
  return r;
}

Request close_req(std::uint64_t ref, std::uint64_t sid) {
  Request r;
  r.kind = Request::Kind::kClose;
  r.ref = ref;
  r.session = sid;
  return r;
}

/// A deterministic multi-batch session script spanning three
/// (plant, policy) groups including a burst group, with a deliberate
/// error row (unknown session) so the error path crosses the wire too.
std::vector<std::vector<Request>> script() {
  const std::vector<double> x0(2, 0.0);
  const std::vector<double> u0(1, 0.0);
  std::vector<std::vector<Request>> batches;
  batches.push_back({open_req(1, 10, "toy2d", "bang-bang"),
                     open_req(2, 11, "toy2d", "periodic-2"),
                     open_req(3, 12, "toy2d", "burst:2")});
  batches.push_back({decide_req(4, 10, x0), decide_req(5, 11, x0),
                     decide_req(6, 12, x0), decide_req(7, 99, x0)});
  batches.push_back({decide_req(8, 12, u0, x0), decide_req(9, 10, u0, x0),
                     decide_req(10, 11, u0, x0)});
  batches.push_back({close_req(11, 10), close_req(12, 11), close_req(13, 12)});
  return batches;
}

TEST(ServeSocket, SocketAnswersMatchInProcessByteForByte) {
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  const std::vector<std::vector<Request>> batches = script();

  // Reference: the same script straight through a Service (the stdio
  // front end's serving path), serialized with the shared writer.
  std::ostringstream ref;
  {
    oic::serve::ServiceConfig cfg;
    cfg.workers = 1;
    oic::serve::Service svc(reg, cfg);
    std::vector<Response> out;
    for (const std::vector<Request>& batch : batches) {
      svc.serve(batch, out);
      oic::serve::write_response_batch(out, ref);
    }
  }
  ASSERT_FALSE(ref.str().empty());

  // The same script across a real loopback socket, lock-step.
  std::ostringstream wire;
  {
    oic::serve::ServiceConfig cfg;
    cfg.workers = 1;
    oic::serve::Server server(reg, cfg);
    oic::serve::SocketListener listener(server, 0);
    oic::serve::SocketClient client("127.0.0.1", listener.port());
    for (const std::vector<Request>& batch : batches) {
      client.submit(batch);
      const std::vector<Response> out = client.await(batch.size());
      oic::serve::write_response_batch(out, wire);
    }
  }
  EXPECT_EQ(ref.str(), wire.str());
}

TEST(ServeSocket, MalformedConnectionDiesAloneServerSurvives) {
  const auto& reg = oic::eval::ScenarioRegistry::builtin();
  oic::serve::ServiceConfig cfg;
  cfg.workers = 1;
  oic::serve::Server server(reg, cfg);
  oic::serve::SocketListener listener(server, 0);

  // A raw client that speaks garbage after the magic line.  The server
  // must poison only this connection: the fd is shut down (recv sees EOF)
  // and nothing crashes.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const char garbage[] = "oic-serve v1\nrequests 2\nbogus verb here\n";
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(garbage) - 1));
    ::shutdown(fd, SHUT_WR);
    char sink[256];
    while (::recv(fd, sink, sizeof(sink), 0) > 0) {
    }
    ::close(fd);
  }

  // A well-formed connection opened after the poisoning round-trips fine.
  oic::serve::SocketClient client("127.0.0.1", listener.port());
  const std::vector<Request> batch{open_req(1, 5, "toy2d", "bang-bang"),
                                   decide_req(2, 5, {0.0, 0.0})};
  client.submit(batch);
  const std::vector<Response> out = client.await(batch.size());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, Response::Kind::kOpened) << out[0].error;
  EXPECT_EQ(out[1].kind, Response::Kind::kDecision) << out[1].error;
  EXPECT_EQ(listener.connections_accepted(), 2u);
}

}  // namespace
