// Unit and property tests for the two-phase simplex (oic::lp).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "linalg/vector.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace {

using oic::linalg::Vector;
using oic::lp::Problem;
using oic::lp::Relation;
using oic::lp::Result;
using oic::lp::Status;

TEST(Simplex, SimpleBoundedMinimum) {
  // min x + y  s.t. x + y >= 1, x,y >= 0  ->  objective 1.
  Problem p(2);
  p.set_objective(Vector{1, 1});
  p.set_bounds(0, 0.0, Problem::kInf);
  p.set_bounds(1, 0.0, Problem::kInf);
  p.add_constraint(Vector{1, 1}, Relation::kGreaterEq, 1.0);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(Simplex, ClassicMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) with value 36 (textbook Dantzig example).
  Problem p(2);
  p.set_objective(Vector{-3, -5});
  p.set_bounds(0, 0.0, Problem::kInf);
  p.set_bounds(1, 0.0, Problem::kInf);
  p.add_constraint(Vector{1, 0}, Relation::kLessEq, 4.0);
  p.add_constraint(Vector{0, 2}, Relation::kLessEq, 12.0);
  p.add_constraint(Vector{3, 2}, Relation::kLessEq, 18.0);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
  EXPECT_NEAR(r.x[1], 6.0, 1e-8);
}

TEST(Simplex, FreeVariables) {
  // min x s.t. x >= -7 with x free: optimum -7.
  Problem p(1);
  p.set_objective(Vector{1});
  p.add_constraint(Vector{1}, Relation::kGreaterEq, -7.0);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -7.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min 2x + 3y s.t. x + y = 4, x - y = 0  ->  x = y = 2, objective 10.
  Problem p(2);
  p.set_objective(Vector{2, 3});
  p.add_constraint(Vector{1, 1}, Relation::kEqual, 4.0);
  p.add_constraint(Vector{1, -1}, Relation::kEqual, 0.0);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
  EXPECT_NEAR(r.x[1], 2.0, 1e-8);
  EXPECT_NEAR(r.objective, 10.0, 1e-8);
}

TEST(Simplex, InfeasibleDetected) {
  Problem p(1);
  p.add_constraint(Vector{1}, Relation::kLessEq, 0.0);
  p.add_constraint(Vector{1}, Relation::kGreaterEq, 1.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Problem p(1);
  p.set_objective(Vector{-1});  // maximize x
  p.add_constraint(Vector{1}, Relation::kGreaterEq, 0.0);
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, VariableBoundsRespected) {
  // min -x - y with box bounds: solution at the upper corner.
  Problem p(2);
  p.set_objective(Vector{-1, -1});
  p.set_bounds(0, -1.0, 2.0);
  p.set_bounds(1, 0.5, 1.5);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
  EXPECT_NEAR(r.x[1], 1.5, 1e-8);
}

TEST(Simplex, UpperBoundOnlyVariable) {
  // min x with x <= 3 (no lower bound) is unbounded.
  Problem p(1);
  p.set_objective(Vector{1});
  p.set_bounds(0, -Problem::kInf, 3.0);
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
  // max x with x <= 3 hits the bound.
  p.set_objective(Vector{-1});
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
}

TEST(Simplex, NegativeRhsRowsNormalizedCorrectly) {
  // min y s.t. -x - y <= -2 (i.e. x + y >= 2), 0 <= x <= 1, y >= 0.
  Problem p(2);
  p.set_objective(Vector{0, 1});
  p.set_bounds(0, 0.0, 1.0);
  p.set_bounds(1, 0.0, Problem::kInf);
  p.add_constraint(Vector{-1, -1}, Relation::kLessEq, -2.0);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-8);  // y = 2 - x >= 1
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-style degeneracy: many redundant rows through the optimum.
  Problem p(2);
  p.set_objective(Vector{-1, 0});
  p.set_bounds(0, 0.0, Problem::kInf);
  p.set_bounds(1, 0.0, Problem::kInf);
  for (int i = 0; i < 20; ++i) {
    p.add_constraint(Vector{1.0, static_cast<double>(i) * 1e-3}, Relation::kLessEq, 1.0);
  }
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-7);
}

TEST(Simplex, ObjectiveOffsetWithShiftedVariables) {
  // min x with -5 <= x <= -2: optimum -5 (bounds both negative exercises
  // the shifted-variable bookkeeping).
  Problem p(1);
  p.set_objective(Vector{1});
  p.set_bounds(0, -5.0, -2.0);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-9);
}

TEST(Simplex, OneNormMinimizationViaSplit) {
  // min |x - 3| as min p + q with x - 3 = p - q, p,q >= 0.
  Problem p(3);  // x, pos, neg
  p.set_objective(Vector{0, 1, 1});
  p.set_bounds(1, 0.0, Problem::kInf);
  p.set_bounds(2, 0.0, Problem::kInf);
  p.add_constraint(Vector{1, -1, 1}, Relation::kEqual, 3.0);
  p.add_constraint(Vector{1, 0, 0}, Relation::kLessEq, 10.0);
  p.add_constraint(Vector{1, 0, 0}, Relation::kGreaterEq, -10.0);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-8);
  EXPECT_NEAR(r.x[0], 3.0, 1e-7);
}

// Property: for random feasible bounded LPs over a box, the simplex optimum
// must (a) be feasible and (b) not beat exhaustive corner enumeration
// (for LPs over boxes the optimum is at a box corner).
class BoxLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoxLpProperty, MatchesCornerEnumeration) {
  oic::Rng rng{static_cast<std::uint64_t>(GetParam() * 7919 + 13)};
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 4));
  Vector c(n), lo(n), hi(n);
  for (std::size_t j = 0; j < n; ++j) {
    c[j] = rng.uniform(-2, 2);
    lo[j] = rng.uniform(-3, 0);
    hi[j] = lo[j] + rng.uniform(0.1, 4.0);
  }
  Problem p(n);
  p.set_objective(c);
  for (std::size_t j = 0; j < n; ++j) p.set_bounds(j, lo[j], hi[j]);
  const Result r = solve(p);
  ASSERT_EQ(r.status, Status::kOptimal);

  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    double v = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      v += c[j] * (((mask >> j) & 1u) ? hi[j] : lo[j]);
    best = std::min(best, v);
  }
  EXPECT_NEAR(r.objective, best, 1e-7);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_GE(r.x[j], lo[j] - 1e-7);
    EXPECT_LE(r.x[j], hi[j] + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxLpProperty, ::testing::Range(0, 40));

// Property: duality spot-check on random inequality-form LPs.
// min c.x s.t. Ax >= b, x >= 0 has dual max b.y s.t. A^T y <= c, y >= 0.
class DualityProperty : public ::testing::TestWithParam<int> {};

TEST_P(DualityProperty, WeakDualityHolds) {
  oic::Rng rng{static_cast<std::uint64_t>(GetParam() * 104729 + 7)};
  const std::size_t n = 3, m = 3;
  std::vector<Vector> rows;
  Vector b(m), c(n);
  for (std::size_t j = 0; j < n; ++j) c[j] = rng.uniform(0.5, 3.0);
  for (std::size_t i = 0; i < m; ++i) {
    Vector a(n);
    for (std::size_t j = 0; j < n; ++j) a[j] = rng.uniform(0.1, 2.0);
    rows.push_back(a);
    b[i] = rng.uniform(0.1, 2.0);
  }

  Problem primal(n);
  primal.set_objective(c);
  for (std::size_t j = 0; j < n; ++j) primal.set_bounds(j, 0.0, Problem::kInf);
  for (std::size_t i = 0; i < m; ++i)
    primal.add_constraint(rows[i], Relation::kGreaterEq, b[i]);
  const Result rp = solve(primal);
  ASSERT_EQ(rp.status, Status::kOptimal);

  Problem dual(m);
  Vector negb = -b;
  dual.set_objective(negb);  // maximize b.y
  for (std::size_t i = 0; i < m; ++i) dual.set_bounds(i, 0.0, Problem::kInf);
  for (std::size_t j = 0; j < n; ++j) {
    Vector col(m);
    for (std::size_t i = 0; i < m; ++i) col[i] = rows[i][j];
    dual.add_constraint(col, Relation::kLessEq, c[j]);
  }
  const Result rd = solve(dual);
  ASSERT_EQ(rd.status, Status::kOptimal);

  // Strong duality for feasible bounded LPs.
  EXPECT_NEAR(rp.objective, -rd.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualityProperty, ::testing::Range(0, 25));

}  // namespace
