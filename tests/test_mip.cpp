// Tests for the branch & bound MIP solver.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "mip/mip.hpp"

namespace {

using oic::linalg::Vector;
using oic::lp::Relation;
using oic::mip::MipProblem;
using oic::mip::MipResult;
using oic::mip::MipStatus;

TEST(Mip, PureLpPassesThrough) {
  // No integer variables: result equals the LP optimum.
  MipProblem p(2);
  p.lp().set_objective(Vector{1, 1});
  p.lp().set_bounds(0, 0.0, oic::lp::Problem::kInf);
  p.lp().set_bounds(1, 0.0, oic::lp::Problem::kInf);
  p.lp().add_constraint(Vector{1, 1}, Relation::kGreaterEq, 1.5);
  const MipResult r = solve(p);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.5, 1e-8);
}

TEST(Mip, SimpleBinaryChoice) {
  // min x + 2y, x + y >= 1, x, y binary: optimum x = 1, y = 0.
  MipProblem p(2);
  p.lp().set_objective(Vector{1, 2});
  p.set_binary(0);
  p.set_binary(1);
  p.lp().add_constraint(Vector{1, 1}, Relation::kGreaterEq, 1.0);
  const MipResult r = solve(p);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-8);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
}

TEST(Mip, KnapsackSmall) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary.
  // Feasible best: b + c (weight 6, value 20).
  MipProblem p(3);
  p.lp().set_objective(Vector{-10, -13, -7});
  for (std::size_t j = 0; j < 3; ++j) p.set_binary(j);
  p.lp().add_constraint(Vector{3, 4, 2}, Relation::kLessEq, 6.0);
  const MipResult r = solve(p);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-7);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 1.0, 1e-9);
}

TEST(Mip, IntegerRounding) {
  // min -x with x <= 2.5, x integer >= 0: optimum x = 2.
  MipProblem p(1);
  p.lp().set_objective(Vector{-1});
  p.set_integer(0);
  p.lp().set_bounds(0, 0.0, oic::lp::Problem::kInf);
  p.lp().add_constraint(Vector{1}, Relation::kLessEq, 2.5);
  const MipResult r = solve(p);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(Mip, InfeasibleIntegerDetected) {
  // 0.4 <= x <= 0.6 with x integer: no integer point.
  MipProblem p(1);
  p.set_integer(0);
  p.lp().set_bounds(0, 0.4, 0.6);
  const MipResult r = solve(p);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
  EXPECT_FALSE(r.has_incumbent);
}

TEST(Mip, LpInfeasibleDetected) {
  MipProblem p(1);
  p.set_binary(0);
  p.lp().add_constraint(Vector{1}, Relation::kGreaterEq, 2.0);
  EXPECT_EQ(solve(p).status, MipStatus::kInfeasible);
}

TEST(Mip, UnboundedDetected) {
  MipProblem p(2);
  p.set_binary(0);
  p.lp().set_objective(Vector{0, 1});  // y free, minimize y
  const MipResult r = solve(p);
  EXPECT_EQ(r.status, MipStatus::kUnbounded);
}

TEST(Mip, MixedIntegerContinuous) {
  // min y s.t. y >= 1.3 z, y >= 0.8 (1 - z), z binary, y >= 0.
  // z = 0 gives y = 0.8; z = 1 gives y = 1.3; optimum 0.8.
  MipProblem p(2);  // z, y
  p.set_binary(0);
  p.lp().set_bounds(1, 0.0, oic::lp::Problem::kInf);
  p.lp().set_objective(Vector{0, 1});
  p.lp().add_constraint(Vector{-1.3, 1}, Relation::kGreaterEq, 0.0);
  p.lp().add_constraint(Vector{0.8, 1}, Relation::kGreaterEq, 0.8);
  const MipResult r = solve(p);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.8, 1e-7);
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
}

TEST(Mip, NodeLimitReportsIncumbent) {
  // A problem needing branching, with a node budget of 1: no proof of
  // optimality, status kNodeLimit.
  MipProblem p(2);
  p.lp().set_objective(Vector{-1, -1});
  p.set_binary(0);
  p.set_binary(1);
  p.lp().add_constraint(Vector{1, 1}, Relation::kLessEq, 1.5);
  oic::mip::MipOptions opt;
  opt.max_nodes = 1;
  const MipResult r = solve(p, opt);
  EXPECT_EQ(r.status, MipStatus::kNodeLimit);
}

// Property: branch & bound must agree with brute-force enumeration on
// random small binary programs.
class MipBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MipBruteForce, MatchesEnumeration) {
  oic::Rng rng{static_cast<std::uint64_t>(GetParam() * 2654435761u + 11)};
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const std::size_t m = static_cast<std::size_t>(rng.uniform_int(1, 4));

  Vector c(n);
  for (std::size_t j = 0; j < n; ++j) c[j] = rng.uniform(-3, 3);
  std::vector<Vector> rows(m, Vector(n));
  Vector rhs(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) rows[i][j] = rng.uniform(-2, 2);
    rhs[i] = rng.uniform(-1, static_cast<double>(n));
  }

  MipProblem p(n);
  p.lp().set_objective(c);
  for (std::size_t j = 0; j < n; ++j) p.set_binary(j);
  for (std::size_t i = 0; i < m; ++i)
    p.lp().add_constraint(rows[i], Relation::kLessEq, rhs[i]);
  const MipResult r = solve(p);

  // Brute force over all 2^n assignments.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    bool ok = true;
    double obj = 0.0;
    for (std::size_t i = 0; i < m && ok; ++i) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        lhs += rows[i][j] * (((mask >> j) & 1u) ? 1.0 : 0.0);
      }
      ok = lhs <= rhs[i] + 1e-9;
    }
    if (!ok) continue;
    for (std::size_t j = 0; j < n; ++j) obj += c[j] * (((mask >> j) & 1u) ? 1.0 : 0.0);
    best = std::min(best, obj);
  }

  if (std::isinf(best)) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible);
  } else {
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "brute force found " << best;
    EXPECT_NEAR(r.objective, best, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipBruteForce, ::testing::Range(0, 40));

}  // namespace
