// Tests for the DRL-policy helpers: DQN state assembly, normalization, and
// the paper's reward function (Sec. III-B.2).

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "control/lti.hpp"
#include "core/drl_policy.hpp"
#include "rl/dqn.hpp"

namespace {

using oic::control::AffineLTI;
using oic::core::apply_state_scale;
using oic::core::build_drl_state;
using oic::core::drl_state_dim;
using oic::core::drl_state_scale;
using oic::core::SafeSets;
using oic::core::skipping_reward;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

TEST(BuildDrlState, PadsYoungHistoryWithZeros) {
  const Vector x{1.0, 2.0};
  const Vector s = build_drl_state(x, {}, 2, 2);
  ASSERT_EQ(s.size(), drl_state_dim(2, 2, 2));
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  for (std::size_t i = 2; i < s.size(); ++i) EXPECT_DOUBLE_EQ(s[i], 0.0);
}

TEST(BuildDrlState, KeepsMostRecentObservationsOldestFirst) {
  const Vector x{0.0};
  const std::vector<Vector> hist = {Vector{1.0}, Vector{2.0}, Vector{3.0}};
  const Vector s = build_drl_state(x, hist, 2, 1);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[1], 2.0);  // older of the two retained
  EXPECT_DOUBLE_EQ(s[2], 3.0);  // most recent last
}

TEST(BuildDrlState, PartialHistoryFrontPadded) {
  const Vector x{0.0};
  const std::vector<Vector> hist = {Vector{5.0}};
  const Vector s = build_drl_state(x, hist, 3, 1);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
  EXPECT_DOUBLE_EQ(s[3], 5.0);
}

TEST(BuildDrlState, DimensionMismatchThrows) {
  EXPECT_THROW(build_drl_state(Vector{0.0}, {Vector{1.0, 2.0}}, 1, 1),
               oic::PreconditionError);
}

TEST(DrlStateScale, ReciprocalHalfWidths) {
  // X = [-30,30]x[-15,15]; disturbance enters only coordinate 0 with E=[1;0].
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{0}, {1}};
  Matrix e{{1}, {0}};
  const AffineLTI sys(a, b, e, Vector{0, 0},
                      HPolytope::box(Vector{-30, -15}, Vector{30, 15}),
                      HPolytope::sym_box(Vector{2}), HPolytope::sym_box(Vector{1}));
  const Vector scale = drl_state_scale(sys, 2);
  ASSERT_EQ(scale.size(), drl_state_dim(2, 2, 2));
  EXPECT_NEAR(scale[0], 1.0 / 30.0, 1e-9);
  EXPECT_NEAR(scale[1], 1.0 / 15.0, 1e-9);
  // E W half-widths: coordinate 0 -> 1, coordinate 1 -> degenerate -> scale 1.
  EXPECT_NEAR(scale[2], 1.0, 1e-6);
  EXPECT_NEAR(scale[3], 1.0, 1e-9);
  EXPECT_NEAR(scale[4], 1.0, 1e-6);
}

TEST(ApplyStateScale, ElementwiseAndEmptyPassthrough) {
  const Vector s = apply_state_scale(Vector{2.0, 4.0}, Vector{0.5, 0.25});
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  const Vector raw = apply_state_scale(Vector{2.0, 4.0}, {});
  EXPECT_DOUBLE_EQ(raw[0], 2.0);
  EXPECT_THROW(apply_state_scale(Vector{1.0}, Vector{1.0, 2.0}),
               oic::PreconditionError);
}

SafeSets toy_sets() {
  SafeSets sets;
  sets.x = HPolytope::sym_box(Vector{4, 4});
  sets.xi = HPolytope::sym_box(Vector{2, 2});
  sets.x_prime = HPolytope::sym_box(Vector{1, 1});
  return sets;
}

TEST(SkippingReward, FreeSkipInsideXPrime) {
  const SafeSets sets = toy_sets();
  // z = 0, x1 and x2 in X': no penalty at all.
  EXPECT_DOUBLE_EQ(skipping_reward(sets, Vector{0, 0}, 0, Vector{0.5, 0}, 7.0,
                                   0.01, 0.0001),
                   0.0);
}

TEST(SkippingReward, LeavingXPrimePaysW1) {
  const SafeSets sets = toy_sets();
  const double r =
      skipping_reward(sets, Vector{0, 0}, 0, Vector{1.5, 0}, 7.0, 0.01, 0.0001);
  EXPECT_DOUBLE_EQ(r, -0.01);  // R1 fires, R2 still free (z=0, x1 in X')
}

TEST(SkippingReward, RunningPaysEnergy) {
  const SafeSets sets = toy_sets();
  const double r =
      skipping_reward(sets, Vector{0, 0}, 1, Vector{0.5, 0}, 7.0, 0.01, 0.0001);
  EXPECT_DOUBLE_EQ(r, -0.0001 * 7.0);
}

TEST(SkippingReward, ForcedRunOutsideXPrimePaysBoth) {
  const SafeSets sets = toy_sets();
  // x1 outside X' (monitor forced z = 1) and x2 also outside.
  const double r =
      skipping_reward(sets, Vector{1.5, 0}, 1, Vector{1.5, 0}, 7.0, 0.01, 0.0001);
  EXPECT_DOUBLE_EQ(r, -0.01 - 0.0001 * 7.0);
}

TEST(DrlPolicy, GreedyDecisionMatchesAgent) {
  oic::rl::DqnConfig cfg;
  cfg.hidden = {8};
  auto agent = std::make_shared<oic::rl::DoubleDqn>(drl_state_dim(2, 2, 1), 2, cfg,
                                                    oic::Rng(3));
  oic::core::DrlPolicy policy(agent, 1, 2);
  const Vector x{0.5, -0.5};
  const std::vector<Vector> hist = {Vector{0.1, 0.0}};
  const int z = policy.decide(x, hist);
  const int expect = agent->greedy_action(build_drl_state(x, hist, 1, 2));
  EXPECT_EQ(z, expect);
  EXPECT_TRUE(z == 0 || z == 1);
}

TEST(DrlPolicy, ScaledDecisionUsesScaledState) {
  oic::rl::DqnConfig cfg;
  cfg.hidden = {8};
  auto agent = std::make_shared<oic::rl::DoubleDqn>(drl_state_dim(2, 2, 1), 2, cfg,
                                                    oic::Rng(4));
  const Vector scale{0.1, 0.1, 1.0, 1.0};
  oic::core::DrlPolicy policy(agent, 1, 2, scale);
  const Vector x{5.0, -5.0};
  const std::vector<Vector> hist = {Vector{0.1, 0.0}};
  const int z = policy.decide(x, hist);
  const int expect = agent->greedy_action(
      apply_state_scale(build_drl_state(x, hist, 1, 2), scale));
  EXPECT_EQ(z, expect);
}

TEST(DrlPolicy, NullAgentRejected) {
  EXPECT_THROW(oic::core::DrlPolicy(nullptr, 1, 2), oic::PreconditionError);
}

}  // namespace
