// Golden-trace regression corpus: one short canonical episode per registry
// plant (x one fixed scenario), serialized at full precision into
// tests/golden/ and byte-compared on every run.
//
// What this catches that the parity tests cannot: test_engine and
// test_eval pin two *code paths* to each other, so a change that shifts
// both paths identically -- a solver tweak, a kernel reassociation, a
// sampling change -- sails through them.  The golden traces pin the
// absolute state/input/skip stream of the full Algorithm-1 loop to
// committed bytes, so any silent numeric drift anywhere in the stack
// (linalg, LP, tube MPC, monitor, profiles, Rng) fails loudly here.
//
// Regenerating (after an *intentional* stream change -- say the PR-5
// Rng::split derivation switch): run this binary with
// OIC_GOLDEN_REGEN=1 in the environment, inspect the diff, commit.  The
// corpus directory is injected at compile time (OIC_GOLDEN_DIR, set by
// CMake to <repo>/tests/golden).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/random.hpp"
#include "core/policy.hpp"
#include "core/runner.hpp"
#include "eval/harness.hpp"
#include "eval/registry.hpp"

namespace {

using oic::Rng;
using oic::eval::CaseData;
using oic::eval::ScenarioRegistry;

#ifndef OIC_GOLDEN_DIR
#error "OIC_GOLDEN_DIR must point at the committed corpus (set by CMakeLists.txt)"
#endif

constexpr std::uint64_t kSeed = 0x601dc0deull;
constexpr std::size_t kSteps = 40;

/// The canonical (plant, scenario) pairs.  One scenario per plant keeps
/// the corpus small; the scenario ids are the most structured ones so the
/// trace exercises skips and forced runs alike.
struct GoldenCase {
  const char* plant;
  const char* scenario;
};
constexpr GoldenCase kCases[] = {
    {"acc", "Fig.4"},
    {"lane-keep", "sine"},
    {"quad-alt", "sine"},
    {"toy2d", "sine"},
};

/// Render the full decision stream of one canonical episode: per step the
/// state entering the period, the actuated input, the skip choice and the
/// monitor's forced flag.  %.17g round-trips doubles exactly, so equal
/// strings == equal bit patterns.
std::string render_trace(const std::string& plant_id, const std::string& scenario_id) {
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  const auto plant = registry.make_plant(plant_id);
  const auto scenario = registry.make_scenario(plant_id, scenario_id);

  Rng rng(kSeed);
  const CaseData data = oic::eval::make_case(*plant, scenario, rng, kSteps);

  oic::core::BangBangPolicy policy;
  oic::core::IntermittentController ic(plant->system(), plant->sets(), plant->rmpc(),
                                       policy,
                                       make_intermittent_config(*plant, policy));
  ic.reset();
  plant->rmpc().reset_solver();

  const std::size_t nw = plant->system().nw();
  const auto disturbance = [&](std::size_t t) {
    oic::linalg::Vector w(nw);
    plant->signal_to_w(data.signal[t], w);
    return w;
  };
  oic::core::RunConfig rcfg;
  rcfg.steps = kSteps;
  const oic::core::RunResult rr = oic::core::run_closed_loop(
      plant->system(), ic, data.x0, disturbance, rcfg);

  std::string out;
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, " %.17g", v);
    out += buf;
  };
  out += "oic-golden-trace v1\n";
  out += "plant " + plant_id + "\n";
  out += "scenario " + scenario_id + "\n";
  std::snprintf(buf, sizeof buf, "seed %llu steps %zu\n",
                static_cast<unsigned long long>(kSeed), kSteps);
  out += buf;
  for (std::size_t t = 0; t < rr.trace.size(); ++t) {
    const auto& step = rr.trace[t];
    std::snprintf(buf, sizeof buf, "t %zu z %d forced %d x", t, step.z,
                  step.forced ? 1 : 0);
    out += buf;
    for (std::size_t i = 0; i < step.x.size(); ++i) num(step.x[i]);
    out += " u";
    for (std::size_t i = 0; i < step.u.size(); ++i) num(step.u[i]);
    out += " w";
    num(step.disturbance);
    out += "\n";
  }
  std::snprintf(buf, sizeof buf, "left_x %d left_xi %d\n", rr.left_x ? 1 : 0,
                rr.left_xi ? 1 : 0);
  out += buf;
  out += "end\n";
  return out;
}

std::string golden_path(const std::string& plant_id) {
  // Scenario ids can contain '.' but stay filesystem-safe; plant ids are
  // already slug-like.
  return std::string(OIC_GOLDEN_DIR) + "/" + plant_id + ".trace";
}

TEST(GoldenTrace, EveryRegistryPlantReplaysByteExact) {
  const bool regen = std::getenv("OIC_GOLDEN_REGEN") != nullptr;
  for (const auto& gc : kCases) {
    SCOPED_TRACE(gc.plant);
    const std::string rendered = render_trace(gc.plant, gc.scenario);
    const std::string path = golden_path(gc.plant);
    if (regen) {
      std::ofstream os(path, std::ios::binary);
      ASSERT_TRUE(os) << "cannot write " << path;
      os << rendered;
      continue;
    }
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is) << "missing golden file " << path
                    << " (regenerate with OIC_GOLDEN_REGEN=1 and commit)";
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string committed = ss.str();
    // Byte compare; on mismatch report the first differing line, which
    // names the step where the streams diverged.
    if (committed != rendered) {
      std::istringstream a(committed), b(rendered);
      std::string la, lb;
      std::size_t line = 0;
      while (std::getline(a, la) && std::getline(b, lb)) {
        ++line;
        ASSERT_EQ(la, lb) << gc.plant << ": first divergence at line " << line
                          << " of " << path;
      }
      FAIL() << gc.plant << ": golden trace length changed (" << path << ")";
    }
  }
}

TEST(GoldenTrace, CoversTheWholeRegistry) {
  // A new production plant must come with a golden trace: this fails
  // until kCases (and the corpus) grow with it.  Test-only plants (the
  // rare1d analytic bed) have no harness episode to trace and are
  // pinned by their own closed-form tests instead.
  const auto ids = ScenarioRegistry::builtin().production_plant_ids();
  ASSERT_EQ(ids.size(), std::size(kCases));
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], kCases[i].plant);
}

}  // namespace
