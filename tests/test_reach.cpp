// Tests for backward/forward reachability operators (Definition 2).

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "control/lqr.hpp"
#include "control/lti.hpp"
#include "control/reach.hpp"

namespace {

using oic::control::AffineLTI;
using oic::control::backward_reach_const_input;
using oic::control::backward_reach_feedback;
using oic::control::forward_reach_const_input;
using oic::control::pre_exists_input;
using oic::control::pre_exists_input_nominal;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

AffineLTI scalar_system(double a, double wmag) {
  return AffineLTI::canonical(Matrix{{a}}, Matrix{{1.0}},
                              HPolytope::sym_box(Vector{10.0}),
                              HPolytope::sym_box(Vector{1.0}),
                              HPolytope::sym_box(Vector{wmag}));
}

TEST(BackwardReach, ScalarZeroInputClosedForm) {
  // x+ = 2x + w, |w| <= 0.5, target |x+| <= 4:
  // need |2x| <= 4 - 0.5 => |x| <= 1.75.
  const AffineLTI sys = scalar_system(2.0, 0.5);
  const HPolytope y = HPolytope::sym_box(Vector{4.0});
  const HPolytope b0 = backward_reach_const_input(sys, y, Vector{0.0});
  const auto bb = b0.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->second[0], 1.75, 1e-8);
  EXPECT_NEAR(bb->first[0], -1.75, 1e-8);
}

TEST(BackwardReach, NonzeroSkipInputShiftsSet) {
  // x+ = x + u_skip + w with u_skip = 1, |w| <= 0: target [0, 2] pulls back
  // to [-1, 1].
  const AffineLTI sys = scalar_system(1.0, 0.0);
  const HPolytope y = HPolytope::box(Vector{0.0}, Vector{2.0});
  const HPolytope b = backward_reach_const_input(sys, y, Vector{1.0});
  const auto bb = b.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->first[0], -1.0, 1e-8);
  EXPECT_NEAR(bb->second[0], 1.0, 1e-8);
}

TEST(BackwardReach, FeedbackClosedForm) {
  // x+ = (a + k) x + w with a = 1, k = -0.5, |w| <= 0.25, target |x| <= 1:
  // |0.5 x| <= 0.75 => |x| <= 1.5.
  const AffineLTI sys = scalar_system(1.0, 0.25);
  const HPolytope y = HPolytope::sym_box(Vector{1.0});
  const HPolytope b = backward_reach_feedback(sys, y, Matrix{{-0.5}}, Vector{0.0});
  const auto bb = b.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->second[0], 1.5, 1e-8);
}

TEST(BackwardReach, MembershipImpliesRobustLanding) {
  // Definition 2 semantics check by exhaustive disturbance sampling.
  const double dt = 0.1;
  Matrix a{{1, dt}, {0, 1}};
  Matrix b{{0.5 * dt * dt}, {dt}};
  const AffineLTI sys = AffineLTI::canonical(
      a, b, HPolytope::sym_box(Vector{5, 5}), HPolytope::sym_box(Vector{2}),
      HPolytope::sym_box(Vector{0.1, 0.1}));
  const HPolytope y = HPolytope::sym_box(Vector{1.0, 1.0});
  const HPolytope b0 = backward_reach_const_input(sys, y, Vector{0.0});

  oic::Rng rng(7);
  const auto bb = b0.bounding_box();
  ASSERT_TRUE(bb.has_value());
  for (int trial = 0; trial < 300; ++trial) {
    const Vector x{rng.uniform(bb->first[0], bb->second[0]),
                   rng.uniform(bb->first[1], bb->second[1])};
    if (!b0.contains(x)) continue;
    // Worst-case disturbances are at W's vertices for linear maps.
    for (const double w0 : {-0.1, 0.1}) {
      for (const double w1 : {-0.1, 0.1}) {
        const Vector next = sys.step(x, Vector{0.0}, Vector{w0, w1});
        EXPECT_TRUE(y.contains(next, 1e-7));
      }
    }
  }
}

TEST(BackwardReach, TighterThanNominalPreimage) {
  // The robust backward set must be a subset of the nominal (w = 0) one.
  const AffineLTI sys = scalar_system(1.5, 0.3);
  const HPolytope y = HPolytope::sym_box(Vector{2.0});
  const HPolytope robust = backward_reach_const_input(sys, y, Vector{0.0});
  const HPolytope nominal = y.affine_preimage(sys.a(), sys.c());
  EXPECT_TRUE(contains_polytope(nominal, robust, 1e-7));
  EXPECT_FALSE(contains_polytope(robust, nominal, 1e-7));
}

TEST(PreExistsInput, ScalarControllabilityWindow) {
  // x+ = 2x + u + w, |u| <= 1, |w| <= 0.25, target |x+| <= 1:
  // exists u: |2x + u| <= 0.75  =>  |x| <= (0.75 + 1)/2 = 0.875.
  const AffineLTI sys = scalar_system(2.0, 0.25);
  const HPolytope y = HPolytope::sym_box(Vector{1.0});
  const HPolytope pre = pre_exists_input(sys, y, sys.x_set(), sys.u_set());
  const auto bb = pre.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->second[0], 0.875, 1e-7);
}

TEST(PreExistsInput, NominalIsLargerThanRobust) {
  const AffineLTI sys = scalar_system(2.0, 0.25);
  const HPolytope y = HPolytope::sym_box(Vector{1.0});
  const HPolytope robust = pre_exists_input(sys, y, sys.x_set(), sys.u_set());
  const HPolytope nominal = pre_exists_input_nominal(sys, y, sys.x_set(), sys.u_set());
  EXPECT_TRUE(contains_polytope(nominal, robust, 1e-7));
  const auto bbn = nominal.bounding_box();
  ASSERT_TRUE(bbn.has_value());
  EXPECT_NEAR(bbn->second[0], 1.0, 1e-7);  // (1 + 1)/2
}

TEST(PreExistsInput, StateConstraintIntersected) {
  const AffineLTI sys = scalar_system(1.0, 0.0);
  const HPolytope y = HPolytope::sym_box(Vector{10.0});
  const HPolytope tight_x = HPolytope::sym_box(Vector{0.5});
  const HPolytope pre = pre_exists_input(sys, y, tight_x, sys.u_set());
  const auto bb = pre.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->second[0], 0.5, 1e-7);
}

TEST(ForwardReach, BoxUnderIdentity) {
  // x+ = x + u + w: forward image of |x| <= 1 under u = 0.5 with |w| <= 0.1
  // is [ -0.6, 1.6 ].
  const AffineLTI sys = scalar_system(1.0, 0.1);
  // 1-D systems use the template path; build a planar variant instead.
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{1}, {0}};
  const AffineLTI sys2 = AffineLTI::canonical(
      a, b, HPolytope::sym_box(Vector{10, 10}), HPolytope::sym_box(Vector{1}),
      HPolytope::sym_box(Vector{0.1, 0.1}));
  const HPolytope s = HPolytope::sym_box(Vector{1.0, 1.0});
  const HPolytope f = forward_reach_const_input(sys2, s, Vector{0.5});
  const auto bb = f.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_NEAR(bb->first[0], -0.6, 1e-6);
  EXPECT_NEAR(bb->second[0], 1.6, 1e-6);
  EXPECT_NEAR(bb->second[1], 1.1, 1e-6);
  (void)sys;
}

TEST(ForwardBackwardDuality, ForwardOfBackwardLandsInside) {
  // For any x in B(Y, 0), the forward reach of {x} under u_skip = 0 must be
  // inside Y.  Sample across a grid.
  const double dt = 0.1;
  Matrix a{{1, dt}, {0, 1}};
  Matrix b{{0.5 * dt * dt}, {dt}};
  const AffineLTI sys = AffineLTI::canonical(
      a, b, HPolytope::sym_box(Vector{5, 5}), HPolytope::sym_box(Vector{2}),
      HPolytope::sym_box(Vector{0.05, 0.05}));
  const HPolytope y = HPolytope::sym_box(Vector{2.0, 1.5});
  const HPolytope back = backward_reach_const_input(sys, y, Vector{0.0});
  for (double x0 = -3; x0 <= 3; x0 += 0.5) {
    for (double x1 = -3; x1 <= 3; x1 += 0.5) {
      const Vector x{x0, x1};
      if (!back.contains(x)) continue;
      const HPolytope fwd = forward_reach_const_input(
          sys, HPolytope::box(x, x), Vector{0.0});
      EXPECT_TRUE(contains_polytope(y, fwd, 1e-6));
    }
  }
}

}  // namespace
