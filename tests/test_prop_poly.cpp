// Property-based tests over the polytope layer (src/poly): seeded random
// polytope/vector generators (tests/prop_util.hpp) drive invariant checks
// across >= 1000 cases per property.  These complement the example-based
// test_poly suite: instead of hand-picked sets they sweep random bounded
// geometry -- redundant rows, sliver facets, oblique halfspaces -- and
// check the *relations* every caller in the control stack relies on:
//
//   * P (-) Q is a subset of P whenever 0 in Q (tube tightening never
//     grows a constraint set);
//   * contains_polytope agrees with vertex sampling (the LP-based subset
//     test and the pointwise definition cannot disagree);
//   * bounding_box contains the set and is support-tight per axis.
//
// Every case derives from the suite seed; a failure message carries the
// case index, which replays the generator stream exactly.

#include <gtest/gtest.h>

#include <string>

#include "common/random.hpp"
#include "poly/hpolytope.hpp"
#include "prop_util.hpp"

namespace {

using oic::Rng;
using oic::linalg::Vector;
using oic::poly::HPolytope;
using namespace oic::proptest;

constexpr int kCases = 1000;

// Dimension schedule 1..3, cycling: low dimensions hit degenerate
// geometry more often; 3-D exercises the general LP paths.
std::size_t dim_for(int c) { return 1 + static_cast<std::size_t>(c % 3); }

TEST(PropPoly, PontryaginDiffIsContainedInMinuend) {
  Rng rng(0xd1ff0001);
  int nonempty = 0;
  for (int c = 0; c < kCases; ++c) {
    const std::size_t dim = dim_for(c);
    const HPolytope p = random_polytope(rng, dim);
    const HPolytope q = random_origin_polytope(rng, dim);
    const HPolytope d = p.pontryagin_diff(q);
    if (d.is_empty()) continue;
    ++nonempty;
    EXPECT_TRUE(contains_polytope(p, d, 1e-7)) << "case " << c << " dim " << dim;
  }
  // The generator keeps Q small relative to P, so emptiness must be the
  // exception -- otherwise the property tested nothing.
  EXPECT_GT(nonempty, kCases / 2);
}

TEST(PropPoly, PontryaginDiffPointwiseDefinitionHolds) {
  // Stronger than containment: x in P (-) Q and q in Q imply x + q in P.
  Rng rng(0xd1ff0002);
  int checked = 0;
  for (int c = 0; c < kCases; ++c) {
    const std::size_t dim = dim_for(c);
    const HPolytope p = random_polytope(rng, dim);
    const HPolytope q = random_origin_polytope(rng, dim);
    const HPolytope d = p.pontryagin_diff(q);
    if (d.is_empty()) continue;
    const auto x = sample_in(rng, d);
    const auto qpt = sample_in(rng, q);
    if (!x || !qpt) continue;
    ++checked;
    EXPECT_TRUE(p.contains(*x + *qpt, 1e-7)) << "case " << c << " dim " << dim;
  }
  EXPECT_GT(checked, kCases / 2);
}

TEST(PropPoly, ContainsPolytopeAgreesWithVertexSampling) {
  // 2-D only: vertices_2d enumerates the inner set exactly, so the
  // LP-based subset test has a ground truth to agree with.  A tolerance
  // band keeps boundary-grazing cases out of the comparison (both answers
  // are legitimate there).
  Rng rng(0xd1ff0003);
  int contained = 0;
  for (int c = 0; c < kCases; ++c) {
    const HPolytope outer = random_polytope(rng, 2);
    // Half the cases shrink the inner set toward the outer's center so
    // true containment actually occurs; the rest are unrelated sets.
    const HPolytope inner = (c % 2 == 0)
                                ? random_polytope(rng, sample_in(rng, outer).value(),
                                                  /*extra_max=*/2,
                                                  /*radius_lo=*/0.05,
                                                  /*radius_hi=*/0.4)
                                : random_polytope(rng, 2);
    const bool verdict = contains_polytope(outer, inner, 1e-7);
    double worst = 0.0;
    for (const auto& v : inner.vertices_2d()) {
      worst = std::max(worst, outer.violation(v));
    }
    if (verdict) {
      ++contained;
      EXPECT_LE(worst, 1e-5) << "case " << c
                             << ": subset verdict but a vertex escapes";
    } else {
      EXPECT_GT(worst, -1e-9) << "case " << c
                              << ": every vertex strictly inside but verdict "
                                 "says not contained";
    }
  }
  EXPECT_GT(contained, kCases / 4);  // the shrunk half must mostly contain
}

TEST(PropPoly, BoundingBoxContainsTheSetAndIsSupportTight) {
  Rng rng(0xd1ff0004);
  for (int c = 0; c < kCases; ++c) {
    const std::size_t dim = dim_for(c);
    const HPolytope p = random_polytope(rng, dim);
    const auto bb = p.bounding_box();
    ASSERT_TRUE(bb.has_value()) << "case " << c;
    for (std::size_t i = 0; i < dim; ++i) {
      Vector e(dim);
      e[i] = 1.0;
      const auto up = p.support(e);
      e[i] = -1.0;
      const auto dn = p.support(e);
      ASSERT_TRUE(up.bounded && up.feasible && dn.bounded && dn.feasible)
          << "case " << c;
      // Containment: the support values never exceed the box...
      EXPECT_LE(up.value, bb->second[i] + 1e-7) << "case " << c << " axis " << i;
      EXPECT_LE(dn.value, -bb->first[i] + 1e-7) << "case " << c << " axis " << i;
      // ...and tightness: the box never exceeds the support values.
      EXPECT_NEAR(up.value, bb->second[i], 1e-6) << "case " << c << " axis " << i;
      EXPECT_NEAR(-dn.value, bb->first[i], 1e-6) << "case " << c << " axis " << i;
    }
    // Sampled interior points respect the box exactly.
    if (const auto x = sample_in(rng, p)) {
      for (std::size_t i = 0; i < dim; ++i) {
        EXPECT_GE((*x)[i], bb->first[i] - 1e-9) << "case " << c;
        EXPECT_LE((*x)[i], bb->second[i] + 1e-9) << "case " << c;
      }
    }
  }
}

}  // namespace
