// Tests for the episode engine and the parallel policy-comparison sweep:
// the engine must reproduce the legacy harness episode exactly, and the
// sharded sweep must be bit-identical to the serial one for a fixed seed.

#include <gtest/gtest.h>

#include <memory>

#include "acc/engine.hpp"
#include "acc/harness.hpp"
#include "acc/scenarios.hpp"
#include "core/policy.hpp"

namespace {

using oic::Rng;

// AccCase construction derives the invariant and strengthened sets (several
// seconds); share one instance across the tests in this binary.
oic::acc::AccCase& shared_case() {
  static oic::acc::AccCase acc;
  return acc;
}

oic::acc::PolicySetFactory test_factory() {
  return [] {
    std::vector<std::unique_ptr<oic::core::SkipPolicy>> ps;
    ps.push_back(std::make_unique<oic::core::BangBangPolicy>());
    ps.push_back(std::make_unique<oic::core::PeriodicPolicy>(4));
    return ps;
  };
}

TEST(EpisodeEngine, MatchesLegacyRunEpisodeExactly) {
  auto& acc = shared_case();
  const auto scen = oic::acc::fig4_scenario(acc.params());
  Rng rng(123);
  oic::core::BangBangPolicy bb;
  oic::acc::EpisodeEngine engine(acc, bb);
  for (int c = 0; c < 3; ++c) {
    const auto data = oic::acc::make_case(acc, scen, rng, 60);
    const auto legacy = oic::acc::run_episode(acc, bb, data);
    const auto fast = engine.run(data);
    EXPECT_DOUBLE_EQ(legacy.fuel, fast.fuel);
    EXPECT_DOUBLE_EQ(legacy.energy, fast.energy);
    EXPECT_EQ(legacy.skipped, fast.skipped);
    EXPECT_EQ(legacy.forced, fast.forced);
    EXPECT_EQ(legacy.steps, fast.steps);
    EXPECT_EQ(legacy.left_x, fast.left_x);
    EXPECT_EQ(legacy.left_xi, fast.left_xi);
  }
}

TEST(EpisodeEngine, RunsAreIndependentOfHistory) {
  auto& acc = shared_case();
  const auto scen = oic::acc::fig4_scenario(acc.params());
  Rng rng(77);
  const auto case_a = oic::acc::make_case(acc, scen, rng, 50);
  const auto case_b = oic::acc::make_case(acc, scen, rng, 50);
  oic::core::PeriodicPolicy periodic(3);
  oic::acc::EpisodeEngine engine(acc, periodic);
  const auto b_first = engine.run(case_b);
  (void)engine.run(case_a);  // interleave a different case
  const auto b_again = engine.run(case_b);
  EXPECT_DOUBLE_EQ(b_first.fuel, b_again.fuel);
  EXPECT_DOUBLE_EQ(b_first.energy, b_again.energy);
  EXPECT_EQ(b_first.skipped, b_again.skipped);
}

TEST(ParallelSweep, BitIdenticalToSerialForFixedSeed) {
  auto& acc = shared_case();
  const auto scen = oic::acc::fig4_scenario(acc.params());

  oic::acc::SweepConfig cfg;
  cfg.cases = 6;
  cfg.steps = 40;
  cfg.seed = 999;

  cfg.workers = 1;
  const auto serial = oic::acc::compare_policies_parallel(acc, scen, test_factory(), cfg);
  cfg.workers = 3;
  const auto sharded =
      oic::acc::compare_policies_parallel(acc, scen, test_factory(), cfg);

  ASSERT_EQ(serial.policy_names, sharded.policy_names);
  ASSERT_EQ(serial.savings.size(), sharded.savings.size());
  for (std::size_t p = 0; p < serial.savings.size(); ++p) {
    ASSERT_EQ(serial.savings[p].size(), sharded.savings[p].size());
    for (std::size_t c = 0; c < serial.savings[p].size(); ++c) {
      EXPECT_EQ(serial.savings[p][c], sharded.savings[p][c])
          << "policy " << p << " case " << c;
    }
    EXPECT_EQ(serial.mean_skipped[p], sharded.mean_skipped[p]);
    EXPECT_EQ(serial.any_violation[p], sharded.any_violation[p]);
  }
}

TEST(ParallelSweep, MatchesLegacyCompareStreamClosely) {
  // Same Rng::split() case stream as the legacy harness; trajectories may
  // differ only where the MPC optimum is non-unique, so savings agree to
  // fine tolerance (bitwise equality is checked against the serial engine
  // path above, which shares the solver).
  auto& acc = shared_case();
  const auto scen = oic::acc::fig4_scenario(acc.params());

  oic::core::BangBangPolicy bb;
  oic::core::PeriodicPolicy periodic(4);
  const auto legacy =
      oic::acc::compare_policies(acc, scen, {&bb, &periodic}, 4, 40, /*seed=*/555);

  oic::acc::SweepConfig cfg;
  cfg.cases = 4;
  cfg.steps = 40;
  cfg.seed = 555;
  cfg.workers = 2;
  const auto engine = oic::acc::compare_policies_parallel(acc, scen, test_factory(), cfg);

  ASSERT_EQ(legacy.savings.size(), engine.savings.size());
  for (std::size_t p = 0; p < legacy.savings.size(); ++p) {
    for (std::size_t c = 0; c < legacy.savings[p].size(); ++c) {
      EXPECT_NEAR(legacy.savings[p][c], engine.savings[p][c], 1e-9);
    }
    EXPECT_FALSE(engine.any_violation[p]);
  }
}

}  // namespace
