#pragma once
/// \file prop_util.hpp
/// Seeded random generators for the property-based tests: random vectors
/// and directions, bounded random polytopes with a known interior point,
/// and rejection sampling inside a set.
///
/// Everything draws from an explicit oic::Rng, so a failing property case
/// reproduces from the suite seed alone -- report the case index with the
/// assertion (the tests stream `case c` into the failure message) and the
/// generator replays it.
///
/// Generator design: a random polytope is an axis-aligned box around a
/// random center intersected with a few random halfspaces that keep the
/// center strictly feasible.  That construction is always bounded and
/// non-empty (the invariants the poly:: ops under test assume) while
/// still exercising redundant rows, sliver facets, and non-axis-aligned
/// geometry.

#include <cstddef>
#include <optional>

#include "common/random.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "poly/hpolytope.hpp"

namespace oic::proptest {

/// Vector with i.i.d. uniform entries in [lo, hi].
inline linalg::Vector random_vector(Rng& rng, std::size_t dim, double lo, double hi) {
  linalg::Vector v(dim);
  for (std::size_t i = 0; i < dim; ++i) v[i] = rng.uniform(lo, hi);
  return v;
}

/// Unit-norm random direction (rejection from the cube, so the draw count
/// is itself random but the stream stays deterministic in `rng`).
inline linalg::Vector random_direction(Rng& rng, std::size_t dim) {
  for (;;) {
    linalg::Vector v = random_vector(rng, dim, -1.0, 1.0);
    const double n = v.norm2();
    if (n >= 0.2) {
      v /= n;
      return v;
    }
  }
}

/// Bounded non-empty random polytope containing `center` with margin:
/// box(center +/- radii) plus `extra` random halfspaces a.x <= a.center +
/// margin.  Radii in [0.3, 2.5] per axis, margins in [0.2, 1.5].
inline poly::HPolytope random_polytope(Rng& rng, const linalg::Vector& center,
                                       std::size_t extra_max = 4,
                                       double radius_lo = 0.3,
                                       double radius_hi = 2.5) {
  const std::size_t dim = center.size();
  linalg::Vector lo(dim), hi(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    const double r = rng.uniform(radius_lo, radius_hi);
    lo[i] = center[i] - r;
    hi[i] = center[i] + r;
  }
  poly::HPolytope p = poly::HPolytope::box(lo, hi);
  const int extra = rng.uniform_int(0, static_cast<int>(extra_max));
  for (int k = 0; k < extra; ++k) {
    const linalg::Vector d = random_direction(rng, dim);
    double dc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) dc += d[i] * center[i];
    linalg::Matrix a(1, dim);
    a.set_row(0, d);
    linalg::Vector b(1);
    b[0] = dc + rng.uniform(0.2, 1.5);
    p = p.intersect(poly::HPolytope(std::move(a), std::move(b)));
  }
  return p;
}

/// Random polytope around a random center in [-2, 2]^dim.
inline poly::HPolytope random_polytope(Rng& rng, std::size_t dim) {
  return random_polytope(rng, random_vector(rng, dim, -2.0, 2.0));
}

/// Small random polytope containing the origin (the subtrahend shape the
/// Pontryagin-difference property needs: 0 in Q makes P (-) Q subset P).
inline poly::HPolytope random_origin_polytope(Rng& rng, std::size_t dim) {
  linalg::Vector origin(dim);
  return random_polytope(rng, origin, /*extra_max=*/2, /*radius_lo=*/0.05,
                         /*radius_hi=*/0.6);
}

/// Uniform-ish sample from `p` by rejection from its bounding box;
/// nullopt when `attempts` rejections all miss (thin sets) or the set has
/// no bounding box.
inline std::optional<linalg::Vector> sample_in(Rng& rng, const poly::HPolytope& p,
                                               int attempts = 64) {
  const auto bb = p.bounding_box();
  if (!bb) return std::nullopt;
  for (int a = 0; a < attempts; ++a) {
    linalg::Vector x(p.dim());
    for (std::size_t i = 0; i < p.dim(); ++i) {
      x[i] = rng.uniform(bb->first[i], bb->second[i]);
    }
    if (p.contains(x, 1e-12)) return x;
  }
  return std::nullopt;
}

}  // namespace oic::proptest
