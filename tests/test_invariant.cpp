// Tests for invariant-set computations: mRPI outer approximation, maximal
// RPI, and the maximal robust control invariant set of Definition 1.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "control/invariant.hpp"
#include "control/lqr.hpp"
#include "control/lti.hpp"

namespace {

using oic::control::AffineLTI;
using oic::control::InvariantOptions;
using oic::control::maximal_robust_control_invariant;
using oic::control::maximal_rpi;
using oic::control::mrpi_outer;
using oic::control::MrpiOptions;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

AffineLTI double_integrator(double wmag = 0.02) {
  const double dt = 0.1;
  Matrix a{{1, dt}, {0, 1}};
  Matrix b{{0.5 * dt * dt}, {dt}};
  return AffineLTI::canonical(a, b, HPolytope::sym_box(Vector{5, 5}),
                              HPolytope::sym_box(Vector{2}),
                              HPolytope::sym_box(Vector{wmag, wmag}));
}

TEST(MrpiOuter, ScalarContractionMatchesClosedForm) {
  // x+ = 0.5 x + w, |w| <= 1: the minimal RPI set is [-2, 2].
  // With contraction factor alpha the outer approximation is
  // [-2, 2] * 1/(1-alpha)-ish but converges as alpha -> small.
  Matrix a{{0.5, 0.0}, {0.0, 0.5}};
  const HPolytope w = HPolytope::sym_box(Vector{1.0, 1.0});
  MrpiOptions opt;
  opt.alpha = 0.01;
  const auto res = mrpi_outer(a, w, opt);
  const auto bb = res.set.bounding_box();
  ASSERT_TRUE(bb.has_value());
  // True minimal RPI: sum of 0.5^i = 2.  Outer approx within 1/(1-alpha).
  EXPECT_GE(bb->second[0], 2.0 - 1e-9);
  EXPECT_LE(bb->second[0], 2.0 / (1 - opt.alpha) + 1e-9);
}

TEST(MrpiOuter, SetIsRobustlyInvariant) {
  // The mRPI outer approximation must itself be robust positively invariant:
  // A F + W inside F.
  const AffineLTI sys = double_integrator();
  const auto lqr = oic::control::dlqr(sys.a(), sys.b(), Matrix::identity(2),
                                      Matrix{{1.0}});
  const Matrix a_cl = sys.a() + sys.b() * lqr.k;
  const auto res = mrpi_outer(a_cl, sys.disturbance_in_state_space());
  // Check via support functions: h_{A F (+) W}(d_i) <= b_i for each facet.
  const HPolytope& f = res.set;
  const HPolytope w = sys.disturbance_in_state_space();
  for (std::size_t i = 0; i < f.num_constraints(); ++i) {
    const Vector di = f.normal(i);
    const auto sf = f.support(oic::linalg::transpose_mul(a_cl, di));
    const auto sw = w.support(di);
    ASSERT_TRUE(sf.bounded && sw.bounded);
    EXPECT_LE(sf.value + sw.value, f.offset(i) + 1e-7);
  }
}

TEST(MrpiOuter, UnstableDynamicsRejected) {
  Matrix a{{1.5, 0.0}, {0.0, 0.3}};
  MrpiOptions opt;
  opt.max_order = 20;
  EXPECT_THROW(mrpi_outer(a, HPolytope::sym_box(Vector{1, 1}), opt),
               oic::NumericalError);
}

TEST(MrpiOuter, HigherOrderGivesTighterSet) {
  Matrix a{{0.9, 0.0}, {0.0, 0.9}};
  const HPolytope w = HPolytope::sym_box(Vector{1, 1});
  MrpiOptions loose, tight;
  loose.alpha = 0.5;
  tight.alpha = 0.02;
  const auto r_loose = mrpi_outer(a, w, loose);
  const auto r_tight = mrpi_outer(a, w, tight);
  EXPECT_GT(r_tight.order, r_loose.order);
  EXPECT_TRUE(contains_polytope(r_loose.set, r_tight.set, 1e-6));
}

TEST(MaximalRpi, StableScalarKeepsWholeBoxWhenDisturbanceSmall) {
  // x+ = 0.5x + d, |d| <= 0.1, constraint |x| <= 1.  Every |x| <= 1 maps to
  // |x+| <= 0.6 < 1, so the whole box is invariant.
  const auto res = maximal_rpi(Matrix{{0.5}}, Vector{0.0},
                               HPolytope::sym_box(Vector{0.1}),
                               HPolytope::sym_box(Vector{1.0}));
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(approx_equal(res.set, HPolytope::sym_box(Vector{1.0}), 1e-7));
  EXPECT_EQ(res.iterations, 1u);
}

TEST(MaximalRpi, ShrinksWhenDynamicsPush) {
  // Stable shear: x+ = 0.9x + 0.5y, y+ = 0.9y.  The invariant subset of the
  // unit box excludes corner states whose shear pushes them out.
  Matrix a{{0.9, 0.5}, {0.0, 0.9}};
  const auto res = maximal_rpi(a, Vector{0, 0}, HPolytope::sym_box(Vector{0.0, 0.0}),
                               HPolytope::sym_box(Vector{1.0, 1.0}));
  ASSERT_TRUE(res.converged);
  // (1, 1) maps to (1.4, 0.9): out of the box, so not in the invariant set.
  EXPECT_FALSE(res.set.contains(Vector{1.0, 1.0}, 1e-6));
  // The x-axis segment is invariant (0.9-contractive there).
  EXPECT_TRUE(res.set.contains(Vector{0.5, 0.0}, 1e-6));
}

TEST(MaximalRpi, MarginallyStableShearReportsNonConvergence) {
  // x+ = x + 0.5y, y+ = y: the maximal invariant set is the measure-zero
  // x-axis segment, which the polytopic fixed point only approaches
  // asymptotically.  The iteration must terminate and say so honestly.
  Matrix a{{1.0, 0.5}, {0.0, 1.0}};
  oic::control::InvariantOptions opt;
  opt.max_iterations = 30;
  const auto res = maximal_rpi(a, Vector{0, 0}, HPolytope::sym_box(Vector{0.0, 0.0}),
                               HPolytope::sym_box(Vector{1.0, 1.0}), opt);
  EXPECT_FALSE(res.converged);
  // Iterates still shrink toward the axis: after 30 sweeps the y-extent is
  // well below the starting unit box.
  const auto bb = res.set.bounding_box();
  ASSERT_TRUE(bb.has_value());
  EXPECT_LT(bb->second[1], 0.15);
}

TEST(MaximalRpi, EmptyWhenDisturbanceDominates) {
  // x+ = x + d, |d| <= 1, |x| <= 0.4: no invariant subset survives.
  const auto res = maximal_rpi(Matrix{{1.0}}, Vector{0.0},
                               HPolytope::sym_box(Vector{1.0}),
                               HPolytope::sym_box(Vector{0.4}));
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(res.set.is_empty());
}

TEST(MaximalRpi, InvarianceVerifiedBySimulation) {
  const AffineLTI sys = double_integrator(0.05);
  const auto lqr = oic::control::dlqr(sys.a(), sys.b(), Matrix::identity(2),
                                      Matrix{{1.0}});
  const auto res = maximal_robust_control_invariant(sys, lqr.k, Vector{0.0});
  ASSERT_TRUE(res.converged);
  ASSERT_FALSE(res.set.is_empty());

  // Random rollouts from random interior points must stay inside.
  oic::Rng rng(2024);
  const auto bb = res.set.bounding_box();
  ASSERT_TRUE(bb.has_value());
  int tested = 0;
  for (int trial = 0; trial < 200 && tested < 40; ++trial) {
    Vector x{rng.uniform(bb->first[0], bb->second[0]),
             rng.uniform(bb->first[1], bb->second[1])};
    if (!res.set.contains(x, -1e-6)) continue;  // want strict interior-ish
    ++tested;
    for (int t = 0; t < 60; ++t) {
      const Vector u = lqr.k * x;
      ASSERT_TRUE(sys.u_set().contains(u, 1e-6))
          << "input constraint violated inside the invariant set";
      const Vector w{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05)};
      x = sys.step(x, u, w);
      ASSERT_TRUE(res.set.contains(x, 1e-6)) << "left the invariant set at step " << t;
    }
  }
  EXPECT_GT(tested, 10);
}

TEST(MaximalRci, IsRobustInvariantPredicate) {
  const AffineLTI sys = double_integrator(0.05);
  const auto lqr = oic::control::dlqr(sys.a(), sys.b(), Matrix::identity(2),
                                      Matrix{{1.0}});
  const auto res = maximal_robust_control_invariant(sys, lqr.k, Vector{0.0});
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(oic::control::is_robust_invariant(sys, lqr.k, Vector{0.0}, res.set));
  // The whole state box is NOT robust invariant (inputs saturate).
  EXPECT_FALSE(
      oic::control::is_robust_invariant(sys, lqr.k, Vector{0.0}, sys.x_set()));
}

TEST(MaximalRci, SubsetOfStateConstraint) {
  const AffineLTI sys = double_integrator(0.05);
  const auto lqr = oic::control::dlqr(sys.a(), sys.b(), Matrix::identity(2),
                                      Matrix{{1.0}});
  const auto res = maximal_robust_control_invariant(sys, lqr.k, Vector{0.0});
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(contains_polytope(sys.x_set(), res.set, 1e-6));
}

// Property sweep: for random stable 2-D closed loops, the mRPI outer
// approximation is invariant and contains the disturbance set.
class MrpiProperty : public ::testing::TestWithParam<int> {};

TEST_P(MrpiProperty, OuterSetInvariantAndContainsW) {
  oic::Rng rng{static_cast<std::uint64_t>(GetParam() * 7 + 1)};
  // Random contraction: rho < 0.95 guaranteed by construction.
  const double r1 = rng.uniform(0.2, 0.9);
  const double r2 = rng.uniform(0.2, 0.9);
  const double shear = rng.uniform(-0.3, 0.3);
  Matrix a{{r1, shear}, {0.0, r2}};
  const HPolytope w = HPolytope::sym_box(
      Vector{rng.uniform(0.05, 0.5), rng.uniform(0.05, 0.5)});
  const auto res = mrpi_outer(a, w);
  const HPolytope& f = res.set;
  // W inside F (since F = sum includes the identity term).
  EXPECT_TRUE(contains_polytope(f, w, 1e-6));
  // Invariance via support functions.
  for (std::size_t i = 0; i < f.num_constraints(); ++i) {
    const Vector di = f.normal(i);
    const auto sf = f.support(oic::linalg::transpose_mul(a, di));
    const auto sw = w.support(di);
    ASSERT_TRUE(sf.bounded && sw.bounded);
    EXPECT_LE(sf.value + sw.value, f.offset(i) + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrpiProperty, ::testing::Range(0, 25));

}  // namespace
