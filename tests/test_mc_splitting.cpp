// Tests for the importance-splitting layer (src/mc/splitting): the
// normalized level function, lineage / ladder validation, the exact
// rare1d closed form, trace purity, engine determinism across worker
// counts and runner instances, degenerate corpora, the batch combiner's
// interval math, and the headline statistical acceptance check -- the
// splitting estimate of the rare1d violation probability (~1.5e-8) must
// cover the closed-form ground truth with its own 95% CI on >= 19 of 20
// seeds.  Campaign-level bit-invariance (workers, checkpoint/resume) is
// asserted on a rare1d splitting campaign.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "mc/campaign.hpp"
#include "mc/splitting.hpp"
#include "poly/hpolytope.hpp"

namespace {

using oic::Interval;
using oic::PreconditionError;
using oic::t_quantile_975;
using oic::wilson_interval;
using oic::eval::ScenarioRegistry;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::mc::CampaignResult;
using oic::mc::CampaignSpec;
using oic::mc::LevelFunction;
using oic::mc::Lineage;
using oic::mc::Rare1dParams;
using oic::mc::SplitBatch;
using oic::mc::SplitCellResult;
using oic::mc::SplitConfig;
using oic::mc::SplitEstimate;
using oic::mc::SplitProcess;
using oic::mc::SplitRunner;
using oic::mc::SplitState;
using oic::poly::HPolytope;

std::string scratch_dir() {
  static const std::string dir = [] {
    auto d = std::filesystem::temp_directory_path() / "oic-test-mc-splitting";
    std::filesystem::remove_all(d);
    std::filesystem::create_directories(d);
    return d.string();
  }();
  return dir;
}

// ---------------------------------------------------------------- level

TEST(LevelFunction, SignedDistanceOnABox) {
  const LevelFunction level(HPolytope::box(Vector{0, 0}, Vector{1, 1}));
  EXPECT_NEAR(level(Vector{0.5, 0.5}), -0.5, 1e-12);
  EXPECT_NEAR(level(Vector{0.0, 0.5}), 0.0, 1e-12);
  EXPECT_NEAR(level(Vector{1.5, 0.5}), 0.5, 1e-12);
  EXPECT_NEAR(level(Vector{0.9, 0.5}), -0.1, 1e-12);
}

TEST(LevelFunction, RowNormalizationMakesScaledRowsAgree) {
  // 7x <= 7 and x <= 1 describe the same halfspace; the normalized level
  // must agree (plain HPolytope::violation would differ by the factor 7).
  const LevelFunction scaled(HPolytope(Matrix{{7, 0}}, Vector{7.0}));
  const LevelFunction plain(HPolytope(Matrix{{1, 0}}, Vector{1.0}));
  for (double x : {-2.0, 0.0, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(scaled(Vector{x, 0.3}), plain(Vector{x, 0.3}), 1e-12);
  }
}

TEST(LevelFunction, RejectsDimensionMismatchAndEmptySets) {
  const LevelFunction level(HPolytope::box(Vector{0, 0}, Vector{1, 1}));
  EXPECT_THROW(level(Vector{0.5}), PreconditionError);
  EXPECT_THROW((LevelFunction{HPolytope{}}), PreconditionError);
}

// ---------------------------------------------------------------- ladders

TEST(Splitting, ValidateLineage) {
  using oic::mc::validate_lineage;
  EXPECT_NO_THROW(validate_lineage({{0, 1}}, 10));
  EXPECT_NO_THROW(validate_lineage({{0, 1}, {3, 2}, {10, 3}}, 10));
  EXPECT_THROW(validate_lineage({}, 10), PreconditionError);
  EXPECT_THROW(validate_lineage({{1, 1}}, 10), PreconditionError);
  EXPECT_THROW(validate_lineage({{0, 1}, {3, 2}, {3, 3}}, 10), PreconditionError);
  EXPECT_THROW(validate_lineage({{0, 1}, {11, 2}}, 10), PreconditionError);
}

TEST(Splitting, ParseLevelsAcceptsStrictLadders) {
  const std::vector<double> ladder = oic::mc::parse_levels("-0.5,-0.25,-0.1");
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0], -0.5);
  EXPECT_EQ(ladder[1], -0.25);
  EXPECT_EQ(ladder[2], -0.1);
}

TEST(Splitting, ParseLevelsRejectsMalformedInput) {
  using oic::mc::parse_levels;
  EXPECT_THROW(parse_levels(""), PreconditionError);
  EXPECT_THROW(parse_levels("-0.5,"), PreconditionError);
  EXPECT_THROW(parse_levels(",-0.5"), PreconditionError);
  EXPECT_THROW(parse_levels("-0.5x"), PreconditionError);
  EXPECT_THROW(parse_levels("-0.5 -0.25"), PreconditionError);
  EXPECT_THROW(parse_levels("nan"), PreconditionError);
  EXPECT_THROW(parse_levels("-inf"), PreconditionError);
  EXPECT_THROW(parse_levels("0.0"), PreconditionError);
  EXPECT_THROW(parse_levels("-0.5,-0.5"), PreconditionError);
  EXPECT_THROW(parse_levels("-0.1,-0.5"), PreconditionError);
  std::string many = "-65";
  for (int i = 64; i >= 1; --i) many += "," + std::to_string(-i);
  EXPECT_THROW(parse_levels(many), PreconditionError);
}

TEST(Splitting, RunnerValidatesConfig) {
  const auto factory = [] { return oic::mc::make_rare1d_process({}, 10); };
  SplitConfig cfg;
  EXPECT_NO_THROW((SplitRunner{factory, cfg}));
  EXPECT_THROW((SplitRunner{{}, cfg}), PreconditionError);
  SplitConfig bad = cfg;
  bad.trials = 0;
  EXPECT_THROW((SplitRunner{factory, bad}), PreconditionError);
  bad = cfg;
  bad.batches = 1;
  EXPECT_THROW((SplitRunner{factory, bad}), PreconditionError);
  bad = cfg;
  bad.max_stages = 0;
  EXPECT_THROW((SplitRunner{factory, bad}), PreconditionError);
  bad = cfg;
  bad.quantile = 0.0;
  EXPECT_THROW((SplitRunner{factory, bad}), PreconditionError);
  bad = cfg;
  bad.quantile = 1.0;
  EXPECT_THROW((SplitRunner{factory, bad}), PreconditionError);
  bad = cfg;
  bad.levels = {-0.1, -0.5};
  EXPECT_THROW((SplitRunner{factory, bad}), PreconditionError);
}

// ---------------------------------------------------------------- rare1d

TEST(Rare1d, ClosedFormPins) {
  const Rare1dParams params;  // c=0.5 sigma=0.1 threshold=0.66 hits=16
  EXPECT_NEAR(oic::mc::rare1d_step_p(params), 2.739964584977899e-02, 1e-12);
  const double p_true = oic::mc::rare1d_episode_p(params, 100);
  EXPECT_NEAR(p_true / 1.526791765161362e-08, 1.0, 1e-10);
}

TEST(Rare1d, EpisodeProbabilityMatchesDirectEnumeration) {
  // steps=3, hits=2: P(Bin(3, p) >= 2) = 3 p^2 (1-p) + p^3 exactly.
  Rare1dParams params;
  params.hits = 2;
  const double p = oic::mc::rare1d_step_p(params);
  const double direct = 3.0 * p * p * (1.0 - p) + p * p * p;
  EXPECT_NEAR(oic::mc::rare1d_episode_p(params, 3) / direct, 1.0, 1e-14);
}

TEST(Rare1d, EpisodeProbabilityEdgesAndMonotonicity) {
  Rare1dParams params;
  params.hits = 5;
  EXPECT_EQ(oic::mc::rare1d_episode_p(params, 4), 0.0);  // hits > steps
  // More steps, lower threshold, fewer required hits: all raise the tail.
  EXPECT_LT(oic::mc::rare1d_episode_p(params, 20),
            oic::mc::rare1d_episode_p(params, 40));
  Rare1dParams lower = params;
  lower.threshold = 0.5;
  EXPECT_LT(oic::mc::rare1d_episode_p(params, 20),
            oic::mc::rare1d_episode_p(lower, 20));
  Rare1dParams fewer = params;
  fewer.hits = 4;
  EXPECT_LT(oic::mc::rare1d_episode_p(params, 20),
            oic::mc::rare1d_episode_p(fewer, 20));
}

TEST(Rare1d, ParameterValidation) {
  Rare1dParams bad;
  bad.sigma = 0.0;
  EXPECT_THROW(oic::mc::rare1d_step_p(bad), PreconditionError);
  bad = Rare1dParams{};
  bad.hits = 0;
  EXPECT_THROW(oic::mc::rare1d_step_p(bad), PreconditionError);
  EXPECT_THROW(oic::mc::make_rare1d_process({}, 0), PreconditionError);
}

TEST(Rare1d, TraceIsPureMonotoneAndOnTheCountGrid) {
  const auto proc = oic::mc::make_rare1d_process({}, 50);
  const Lineage root = {{0, 12345}};
  std::vector<double> a, b;
  proc->trace(root, a);
  proc->trace(root, b);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a, b);  // bit-identical replay
  const double denom = static_cast<double>(Rare1dParams{}.hits);
  double prev = -1.0;
  for (double v : a) {
    EXPECT_GE(v, prev);  // the trace is its own running max
    prev = v;
    // Every value sits on the (count - hits) / hits grid.
    const double count = v * denom + denom;
    EXPECT_NEAR(count, std::round(count), 1e-9);
  }
}

TEST(Rare1d, CloneKeepsTheParentPrefix) {
  const auto proc = oic::mc::make_rare1d_process({}, 50);
  const Lineage root = {{0, 777}};
  std::vector<double> parent, clone;
  proc->trace(root, parent);
  const Lineage branched = {{0, 777}, {20, 888}};
  proc->trace(branched, clone);
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_EQ(clone[t], parent[t]);  // identical before the hand-off
  }
  EXPECT_GE(clone.back(), clone[19]);  // still a running max afterwards
}

// ---------------------------------------------------------------- engine

void expect_same_state(const SplitState& a, const SplitState& b) {
  EXPECT_EQ(a.done, b.done);
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    const SplitBatch& x = a.batches[i];
    const SplitBatch& y = b.batches[i];
    EXPECT_EQ(x.done, y.done);
    EXPECT_EQ(x.estimate.trials, y.estimate.trials);
    EXPECT_EQ(x.estimate.episodes, y.estimate.episodes);
    EXPECT_EQ(x.estimate.levels, y.estimate.levels);
    EXPECT_EQ(x.estimate.survivors, y.estimate.survivors);
    ASSERT_EQ(x.frontier.size(), y.frontier.size());
    for (std::size_t j = 0; j < x.frontier.size(); ++j) {
      ASSERT_EQ(x.frontier[j].size(), y.frontier[j].size());
      for (std::size_t k = 0; k < x.frontier[j].size(); ++k) {
        EXPECT_EQ(x.frontier[j][k].from_step, y.frontier[j][k].from_step);
        EXPECT_EQ(x.frontier[j][k].seed, y.frontier[j][k].seed);
      }
    }
  }
}

SplitConfig small_rare_config() {
  SplitConfig cfg;
  cfg.trials = 64;
  cfg.batches = 4;
  cfg.max_stages = 24;
  cfg.seed = 42;
  cfg.workers = 1;
  return cfg;
}

TEST(Splitting, BitIdenticalAcrossWorkerCounts) {
  const auto factory = [] { return oic::mc::make_rare1d_process({}, 60); };
  SplitConfig cfg = small_rare_config();
  const SplitState serial = SplitRunner(factory, cfg).run();
  cfg.workers = 4;
  const SplitState parallel = SplitRunner(factory, cfg).run();
  EXPECT_TRUE(serial.done);
  EXPECT_GT(serial.p_hat(), 0.0);
  expect_same_state(serial, parallel);
}

TEST(Splitting, BitIdenticalAcrossRunnerInstances) {
  // Advancing one stage at a time through a FRESH runner each step (the
  // checkpoint/resume situation: state survives, runner does not) must
  // match a single uninterrupted run.
  const auto factory = [] { return oic::mc::make_rare1d_process({}, 60); };
  const SplitConfig cfg = small_rare_config();
  const SplitState reference = SplitRunner(factory, cfg).run();
  SplitState resumed;
  while (!resumed.done) {
    SplitRunner runner(factory, cfg);
    runner.advance(resumed);
  }
  expect_same_state(reference, resumed);
}

namespace degenerate {

/// Constant-level process: every step reports `value`.
class Constant final : public SplitProcess {
 public:
  explicit Constant(double value) : value_(value) {}
  std::size_t steps() const override { return 5; }
  void trace(const Lineage& lineage, std::vector<double>& levels) override {
    oic::mc::validate_lineage(lineage, steps());
    levels.assign(steps(), value_);
  }

 private:
  double value_;
};

}  // namespace degenerate

TEST(Splitting, EveryTrialViolatesGivesProbabilityOne) {
  SplitConfig cfg = small_rare_config();
  const SplitState st =
      SplitRunner([] { return std::make_unique<degenerate::Constant>(0.0); }, cfg)
          .run();
  EXPECT_TRUE(st.done);
  EXPECT_EQ(st.extinct_batches(), 0u);
  EXPECT_EQ(st.p_hat(), 1.0);
  const Interval ci = st.ci95();
  EXPECT_EQ(ci.lo, 1.0);
  EXPECT_EQ(ci.hi, 1.0);
  for (const SplitBatch& b : st.batches) {
    ASSERT_EQ(b.estimate.levels.size(), 1u);  // one stage straight to 0
    EXPECT_EQ(b.estimate.levels[0], 0.0);
    EXPECT_EQ(b.estimate.survivors[0], cfg.trials);
  }
}

TEST(Splitting, NoProgressGoesExtinctWithAnHonestUpperBound) {
  // A flat level function can never improve past its first stage: the
  // adaptive placer stalls, clamps the next level to the 0 boundary, and
  // the batch goes extinct.  The combined CI must degrade to the Wilson
  // "no survivor seen" statement, never to a two-sided claim.
  SplitConfig cfg = small_rare_config();
  const SplitState st =
      SplitRunner([] { return std::make_unique<degenerate::Constant>(-1.0); }, cfg)
          .run();
  EXPECT_TRUE(st.done);
  EXPECT_EQ(st.extinct_batches(), st.batches.size());
  EXPECT_EQ(st.p_hat(), 0.0);
  const Interval ci = st.ci95();
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, wilson_interval(0, cfg.trials).hi);
}

TEST(Splitting, ExplicitLadderRunsExactlyOneStagePerLevelPlusBoundary) {
  SplitConfig cfg = small_rare_config();
  cfg.levels = {-0.5, -0.25};
  const SplitState st =
      SplitRunner([] { return std::make_unique<degenerate::Constant>(0.0); }, cfg)
          .run();
  for (const SplitBatch& b : st.batches) {
    ASSERT_EQ(b.estimate.levels.size(), 3u);
    EXPECT_EQ(b.estimate.levels[0], -0.5);
    EXPECT_EQ(b.estimate.levels[1], -0.25);
    EXPECT_EQ(b.estimate.levels[2], 0.0);
    EXPECT_EQ(b.estimate.survivors, (std::vector<std::uint64_t>{64, 64, 64}));
  }
}

// ---------------------------------------------------------------- intervals

TEST(Stats, TQuantilePins) {
  EXPECT_THROW(t_quantile_975(0), PreconditionError);
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-9);
  EXPECT_NEAR(t_quantile_975(5), 2.571, 1e-9);
  EXPECT_NEAR(t_quantile_975(15), 2.131, 1e-9);
  EXPECT_NEAR(t_quantile_975(30), 2.042, 1e-9);
  EXPECT_NEAR(t_quantile_975(40), 2.021, 1e-9);
  EXPECT_NEAR(t_quantile_975(60), 2.000, 1e-9);
  EXPECT_NEAR(t_quantile_975(120), 1.980, 1e-9);
  EXPECT_NEAR(t_quantile_975(1000), oic::kZ95, 1e-12);
  // Monotone non-increasing toward the normal quantile.
  for (std::size_t dof = 1; dof < 200; ++dof) {
    EXPECT_GE(t_quantile_975(dof), t_quantile_975(dof + 1));
    EXPECT_GE(t_quantile_975(dof), oic::kZ95);
  }
}

SplitBatch batch_with(std::vector<std::uint64_t> survivors, std::uint64_t trials) {
  SplitBatch b;
  b.estimate.trials = trials;
  b.estimate.survivors = std::move(survivors);
  b.estimate.levels.assign(b.estimate.survivors.size(), -0.5);
  b.done = true;
  return b;
}

TEST(Splitting, EstimateMathOnHandBuiltCounts) {
  SplitEstimate e;
  EXPECT_EQ(e.p_hat(), 0.0);
  EXPECT_EQ(e.log_sigma(), 0.0);
  EXPECT_EQ(e.ci95().lo, 0.0);
  EXPECT_EQ(e.ci95().hi, 1.0);

  e = batch_with({50, 20}, 100).estimate;
  EXPECT_NEAR(e.p_hat(), 0.1, 1e-15);
  const double var = (1.0 - 0.5) / (100.0 * 0.5) + (1.0 - 0.2) / (100.0 * 0.2);
  EXPECT_NEAR(e.log_sigma(), std::sqrt(var), 1e-15);
  EXPECT_FALSE(e.extinct());

  e = batch_with({50, 0}, 100).estimate;
  EXPECT_TRUE(e.extinct());
  EXPECT_EQ(e.p_hat(), 0.0);
  EXPECT_EQ(e.log_sigma(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(e.ci95().lo, 0.0);
  EXPECT_NEAR(e.ci95().hi, 0.5 * wilson_interval(0, 100).hi, 1e-15);
}

TEST(Splitting, CombinedIntervalIsCoxOverBatchLogs) {
  SplitState st;
  EXPECT_EQ(st.p_hat(), 0.0);
  EXPECT_EQ(st.ci95().lo, 0.0);
  EXPECT_EQ(st.ci95().hi, 1.0);

  // One live batch: no spread information, fall back to its nominal CI.
  st.batches.push_back(batch_with({50, 20}, 100));
  const Interval nominal = st.batches[0].estimate.ci95();
  EXPECT_EQ(st.ci95().lo, nominal.lo);
  EXPECT_EQ(st.ci95().hi, nominal.hi);

  // Two live batches: Cox's lognormal-mean interval with t_{1}.
  st.batches.push_back(batch_with({40, 30}, 100));
  const double p1 = 0.5 * 0.2;
  const double p2 = 0.4 * 0.3;
  EXPECT_NEAR(st.p_hat(), 0.5 * (p1 + p2), 1e-15);
  const double ml = 0.5 * (std::log(p1) + std::log(p2));
  const double sl2 = (std::log(p1) - ml) * (std::log(p1) - ml) +
                     (std::log(p2) - ml) * (std::log(p2) - ml);
  const double center = ml + 0.5 * sl2;
  const double se = std::sqrt(sl2 / 2.0 + sl2 * sl2 / 2.0);
  const Interval ci = st.ci95();
  EXPECT_NEAR(ci.lo, std::exp(center - t_quantile_975(1) * se), 1e-12);
  EXPECT_NEAR(ci.hi, std::exp(center + t_quantile_975(1) * se), 1e-12);
  EXPECT_LE(ci.lo, st.p_hat());

  // Any extinct batch kills the two-sided statement: [0, conservative hi].
  st.batches.push_back(batch_with({10, 0}, 100));
  const Interval ext = st.ci95();
  EXPECT_EQ(ext.lo, 0.0);
  EXPECT_GE(ext.hi, 0.1 * wilson_interval(0, 100).hi);
  EXPECT_LE(ext.hi, 1.0);
}

// ---------------------------------------------------------------- coverage

TEST(Rare1d, SplittingCoversTheClosedFormAcrossSeeds) {
  // The headline acceptance criterion: over 20 seeds, the batched
  // splitting estimate of the rare1d violation probability (~1.5e-8, an
  // event crude Monte Carlo cannot even see at these budgets) must cover
  // the closed form with its own 95% CI on at least 19.  The batch spread
  // is what makes this hold -- the nominal independent-stage CI is 2-10x
  // too narrow under clone correlation and fails this test badly.
  const Rare1dParams params;
  const std::size_t steps = 100;
  const double p_true = oic::mc::rare1d_episode_p(params, steps);
  int covered = 0;
  std::size_t extinct = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    SplitConfig cfg;
    cfg.trials = 512;
    cfg.batches = 16;
    cfg.seed = seed * 7919 + 11;
    SplitRunner runner(
        [&] { return oic::mc::make_rare1d_process(params, steps); }, cfg);
    const SplitState st = runner.run();
    EXPECT_TRUE(st.done);
    const Interval ci = st.ci95();
    if (ci.lo <= p_true && p_true <= ci.hi) ++covered;
    extinct += st.extinct_batches();
    // Sanity per seed: the estimate is within two orders of magnitude.
    EXPECT_GT(st.p_hat(), p_true * 1e-2);
    EXPECT_LT(st.p_hat(), p_true * 1e2);
  }
  EXPECT_GE(covered, 19);
  EXPECT_EQ(extinct, 0u);
}

// ---------------------------------------------------------------- campaign

void expect_same_split_cells(const std::vector<SplitCellResult>& a,
                             const std::vector<SplitCellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].plant, b[i].plant);
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_EQ(a[i].falsified, b[i].falsified);
    EXPECT_EQ(a[i].seeded_levels, b[i].seeded_levels);
    EXPECT_EQ(a[i].p_true, b[i].p_true);
    ASSERT_EQ(a[i].units.size(), b[i].units.size());
    for (std::size_t u = 0; u < a[i].units.size(); ++u) {
      EXPECT_EQ(a[i].units[u].policy, b[i].units[u].policy);
      expect_same_state(a[i].units[u].state, b[i].units[u].state);
    }
  }
}

CampaignSpec rare_spec() {
  CampaignSpec spec;
  spec.plants = {"rare1d"};
  spec.splitting = true;
  spec.steps = 100;
  spec.seed = 7;
  spec.workers = 1;
  spec.split_trials = 64;
  spec.split_batches = 4;
  return spec;
}

TEST(Campaign, SplittingBitIdenticalAcrossWorkerCounts) {
  CampaignSpec spec = rare_spec();
  const CampaignResult serial = run_campaign(ScenarioRegistry::builtin(), spec);
  spec.workers = 4;
  const CampaignResult parallel = run_campaign(ScenarioRegistry::builtin(), spec);
  ASSERT_EQ(serial.split_cells.size(), 1u);
  EXPECT_EQ(serial.split_cells[0].family, "analytic");
  EXPECT_NEAR(serial.split_cells[0].p_true, 1.526791765161362e-08, 1e-18);
  EXPECT_FALSE(serial.safety_violations);  // rare1d violations are the truth
  expect_same_split_cells(serial.split_cells, parallel.split_cells);
}

TEST(Campaign, SplittingBitIdenticalAcrossCheckpointResume) {
  CampaignSpec spec = rare_spec();
  const CampaignResult reference = run_campaign(ScenarioRegistry::builtin(), spec);

  spec.checkpoint = scratch_dir() + "/rare1d.ck";
  spec.max_blocks = 5;  // a 5-stage slice, then resume to completion
  const CampaignResult slice = run_campaign(ScenarioRegistry::builtin(), spec);
  EXPECT_FALSE(slice.split_cells[0].units[0].state.done);
  spec.max_blocks = 0;
  const CampaignResult resumed = run_campaign(ScenarioRegistry::builtin(), spec);
  EXPECT_GE(resumed.resumed_blocks, 5u);
  expect_same_split_cells(reference.split_cells, resumed.split_cells);

  // The campaign JSON must agree too (modulo the timing block, which is
  // not derived from the statistics): compare the splitting section.
  const std::string a = campaign_json(spec, reference);
  const std::string b = campaign_json(spec, resumed);
  const auto section = [](const std::string& doc) {
    const std::size_t begin = doc.find("\"mc_splitting\"");
    EXPECT_NE(begin, std::string::npos);
    return doc.substr(begin);
  };
  EXPECT_EQ(section(a), section(b));
}

}  // namespace
