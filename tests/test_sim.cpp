// Tests for the simulation substrate: velocity profiles, fuel model, traces.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "sim/fuel.hpp"
#include "sim/profile.hpp"
#include "sim/trace.hpp"

namespace {

using oic::Rng;
using oic::linalg::Vector;

TEST(SinusoidalProfile, NoiseFreeMatchesEquation8) {
  // vf(t) = ve + af sin(pi/2 * dt * t).
  oic::sim::SinusoidalProfile prof(40.0, 9.0, 0.1, 0.0, 30.0, 50.0);
  prof.reset(Rng(1));
  for (int t = 0; t < 50; ++t) {
    const double expect = 40.0 + 9.0 * std::sin(M_PI / 2.0 * 0.1 * t);
    EXPECT_NEAR(prof.next(), expect, 1e-12);
  }
}

TEST(SinusoidalProfile, NoiseBoundedAndClipped) {
  oic::sim::SinusoidalProfile prof(40.0, 9.0, 0.1, 1.0, 30.0, 50.0);
  prof.reset(Rng(7));
  for (int t = 0; t < 500; ++t) {
    const double v = prof.next();
    EXPECT_GE(v, 30.0);
    EXPECT_LE(v, 50.0);
    const double nominal = prof.nominal_at(static_cast<std::size_t>(t));
    EXPECT_LE(std::fabs(v - std::clamp(nominal, 30.0, 50.0)), 1.0 + 1e-12);
  }
}

TEST(SinusoidalProfile, DeterministicForSeed) {
  oic::sim::SinusoidalProfile a(40, 5, 0.1, 2.0, 30, 50);
  oic::sim::SinusoidalProfile b(40, 5, 0.1, 2.0, 30, 50);
  a.reset(Rng(99));
  b.reset(Rng(99));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(UniformRandomProfile, CoversRange) {
  oic::sim::UniformRandomProfile prof(30, 50);
  prof.reset(Rng(3));
  double lo = 100, hi = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = prof.next();
    EXPECT_GE(v, 30.0);
    EXPECT_LE(v, 50.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 31.0);  // actually explores the range
  EXPECT_GT(hi, 49.0);
}

TEST(BoundedAccelProfile, StepToStepChangeBounded) {
  const double dt = 0.1, amax = 20.0;
  oic::sim::BoundedAccelProfile prof(30, 50, amax, dt);
  prof.reset(Rng(11));
  double prev = prof.next();
  for (int i = 0; i < 1000; ++i) {
    const double v = prof.next();
    EXPECT_LE(std::fabs(v - prev), amax * dt + 1e-12);
    EXPECT_GE(v, 30.0);
    EXPECT_LE(v, 50.0);
    prev = v;
  }
}

TEST(StopAndGoProfile, OscillatesBetweenLevels) {
  oic::sim::StopAndGoProfile prof(32, 48, 10, 5, 0.0);
  prof.reset(Rng(1));
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 200; ++i) {
    const double v = prof.next();
    EXPECT_GE(v, 32.0 - 1e-12);
    EXPECT_LE(v, 48.0 + 1e-12);
    if (v < 32.5) saw_low = true;
    if (v > 47.5) saw_high = true;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(PiecewiseConstantProfile, FollowsScriptAndRepeats) {
  oic::sim::PiecewiseConstantProfile prof({{2, 35.0}, {3, 45.0}});
  prof.reset(Rng(1));
  const double expect[] = {35, 35, 45, 45, 45, 35, 35, 45};
  for (double e : expect) EXPECT_DOUBLE_EQ(prof.next(), e);
  EXPECT_DOUBLE_EQ(prof.v_min(), 35.0);
  EXPECT_DOUBLE_EQ(prof.v_max(), 45.0);
}

TEST(ConstantProfile, AlwaysSameValue) {
  oic::sim::ConstantProfile prof(42.0);
  prof.reset(Rng(0));
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(prof.next(), 42.0);
}

TEST(Profiles, CloneIsIndependent) {
  oic::sim::BoundedAccelProfile prof(30, 50, 20, 0.1);
  prof.reset(Rng(5));
  auto clone = prof.clone();
  clone->reset(Rng(5));
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(prof.next(), clone->next());
}

TEST(FuelModel, IdleAtZeroPower) {
  oic::sim::FuelModel fuel;
  // Standing still: zero speed => zero power => idle rate.
  EXPECT_DOUBLE_EQ(fuel.rate(0.0, 0.0), fuel.params().idle_rate);
  // Hard braking: overrun => idle rate.
  EXPECT_DOUBLE_EQ(fuel.rate(30.0, -5.0), fuel.params().idle_rate);
}

TEST(FuelModel, MonotoneInAcceleration) {
  oic::sim::FuelModel fuel;
  double prev = 0.0;
  for (double a = 0.0; a <= 3.0; a += 0.5) {
    const double r = fuel.rate(25.0, a);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(FuelModel, MonotoneInSpeedAtConstantAcceleration) {
  oic::sim::FuelModel fuel;
  EXPECT_LT(fuel.rate(10.0, 1.0), fuel.rate(30.0, 1.0));
}

TEST(FuelModel, PowerMatchesHandComputation) {
  oic::sim::FuelParams p;
  p.mass = 1000;
  p.drag_coeff = 0.0;
  p.rolling_coeff = 0.0;
  oic::sim::FuelModel fuel(p);
  // P = m v a = 1000 * 20 * 2 = 40 kW.
  EXPECT_NEAR(fuel.power_kw(20.0, 2.0), 40.0, 1e-9);
  EXPECT_NEAR(fuel.rate(20.0, 2.0), p.idle_rate + p.willans_slope * 40.0, 1e-9);
}

TEST(FuelModel, ConsumeScalesWithDt) {
  oic::sim::FuelModel fuel;
  const double r = fuel.rate(30.0, 1.0);
  EXPECT_NEAR(fuel.consume(30.0, 1.0, 0.1), 0.1 * r, 1e-12);
  EXPECT_THROW(fuel.consume(30.0, 1.0, -0.1), oic::PreconditionError);
}

TEST(FuelModel, RegenCreditsBrakingButNeverNegative) {
  oic::sim::FuelParams p;
  p.regen_fraction = 1.0;
  oic::sim::FuelModel fuel(p);
  EXPECT_GE(fuel.rate(30.0, -10.0), 0.0);
  EXPECT_LE(fuel.rate(30.0, -10.0), p.idle_rate);
}

TEST(Trace, AggregatesTotals) {
  oic::sim::Trace trace;
  for (int t = 0; t < 4; ++t) {
    oic::sim::TraceStep s;
    s.t = static_cast<std::size_t>(t);
    s.x = Vector{0.0, 0.0};
    s.u = Vector{t % 2 == 0 ? 2.0 : -1.0};
    s.z = t % 2;
    s.forced = (t == 3);
    s.fuel = 0.5;
    trace.add(s);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_DOUBLE_EQ(trace.total_fuel(), 2.0);
  EXPECT_DOUBLE_EQ(trace.total_energy(), 2.0 + 1.0 + 2.0 + 1.0);
  EXPECT_EQ(trace.skipped_steps(), 2u);
  EXPECT_EQ(trace.forced_steps(), 1u);
  EXPECT_EQ(trace.controller_steps(), 2u);
  EXPECT_DOUBLE_EQ(trace.skip_ratio(), 0.5);
}

TEST(Trace, EmptyTraceSafeDefaults) {
  oic::sim::Trace trace;
  EXPECT_DOUBLE_EQ(trace.skip_ratio(), 0.0);
  EXPECT_THROW(trace[0], oic::PreconditionError);
}

}  // namespace
