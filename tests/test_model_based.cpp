// Tests for the model-based skipping policy (Equation 6): exact search,
// big-M MIP, and their agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "control/invariant.hpp"
#include "control/lqr.hpp"
#include "core/model_based.hpp"
#include "core/safe_sets.hpp"

namespace {

using oic::Rng;
using oic::control::AffineLTI;
using oic::control::LinearFeedback;
using oic::core::ConstantOracle;
using oic::core::ModelBasedConfig;
using oic::core::ModelBasedPolicy;
using oic::core::SafeSets;
using oic::core::SequenceOracle;
using oic::linalg::Matrix;
using oic::linalg::Vector;
using oic::poly::HPolytope;

struct Rig {
  AffineLTI sys;
  Matrix k;
  SafeSets sets;
  std::unique_ptr<LinearFeedback> kappa;

  static Rig make(double wmag = 0.03) {
    const double dt = 0.1;
    Matrix a{{1, dt}, {0, 1}};
    Matrix b{{0.5 * dt * dt}, {dt}};
    AffineLTI sys = AffineLTI::canonical(
        a, b, HPolytope::sym_box(Vector{5, 5}), HPolytope::sym_box(Vector{2}),
        HPolytope::sym_box(Vector{wmag, wmag}));
    const auto lqr =
        oic::control::dlqr(sys.a(), sys.b(), Matrix::identity(2), Matrix{{1.0}});
    const auto inv =
        oic::control::maximal_robust_control_invariant(sys, lqr.k, Vector{0.0});
    SafeSets sets = oic::core::compute_safe_sets(sys, inv.set, Vector{0.0});
    Rig rig{std::move(sys), lqr.k, std::move(sets), nullptr};
    rig.kappa = std::make_unique<LinearFeedback>(rig.k);
    return rig;
  }
};

TEST(ModelBased, SkipsWhenOriginIsSelfSustaining) {
  // At the origin with zero disturbance, skipping forever is free and
  // feasible, so the policy must skip.
  Rig rig = Rig::make();
  ConstantOracle oracle(Vector{0.0, 0.0});
  ModelBasedConfig cfg;
  cfg.horizon = 6;
  ModelBasedPolicy policy(rig.sys, rig.sets, *rig.kappa, Vector{0.0}, oracle, cfg);
  EXPECT_EQ(policy.decide(Vector{0.0, 0.0}, {}), 0);
  EXPECT_TRUE(policy.last().feasible);
  EXPECT_NEAR(policy.last().planned_cost, 0.0, 1e-12);
  for (int z : policy.last().planned_z) EXPECT_EQ(z, 0);
}

TEST(ModelBased, ClockAdvancesAndResets) {
  Rig rig = Rig::make();
  ConstantOracle oracle(Vector{0.0, 0.0});
  ModelBasedPolicy policy(rig.sys, rig.sets, *rig.kappa, Vector{0.0}, oracle);
  policy.decide(Vector{0, 0}, {});
  policy.decide(Vector{0, 0}, {});
  EXPECT_EQ(policy.clock(), 2u);
  policy.reset();
  EXPECT_EQ(policy.clock(), 0u);
}

TEST(ModelBased, ExactMatchesBruteForce) {
  // Enumerate all 2^H sequences by hand and compare the optimal cost.
  Rig rig = Rig::make();
  const std::size_t h = 5;
  std::vector<Vector> wseq;
  Rng rng(7);
  for (std::size_t t = 0; t < h; ++t)
    wseq.push_back(Vector{rng.uniform(-0.03, 0.03), rng.uniform(-0.03, 0.03)});
  SequenceOracle oracle(wseq);

  ModelBasedConfig cfg;
  cfg.horizon = h;
  ModelBasedPolicy policy(rig.sys, rig.sets, *rig.kappa, Vector{0.0}, oracle, cfg);

  const auto ball = rig.sets.x_prime.chebyshev();
  ASSERT_TRUE(ball.feasible);
  const Vector x0 = ball.center + Vector{0.7, 0.2};
  if (!rig.sets.x_prime.contains(x0)) GTEST_SKIP() << "probe state left X'";

  policy.decide(x0, {});
  ASSERT_TRUE(policy.last().feasible);
  const double got = policy.last().planned_cost;

  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << h); ++mask) {
    Vector x = x0;
    double cost = 0.0;
    bool ok = true;
    for (std::size_t k = 0; k < h && ok; ++k) {
      const Vector u = ((mask >> k) & 1u) ? Vector{(rig.k * x)[0]} : Vector{0.0};
      if (!rig.sys.u_set().contains(u, 1e-9)) {
        ok = false;
        break;
      }
      x = rig.sys.step(x, u, wseq[k]);
      if (!rig.sets.x_prime.contains(x, 1e-9)) ok = false;
      cost += u.norm1();
    }
    if (ok) best = std::min(best, cost);
  }
  ASSERT_TRUE(std::isfinite(best));
  EXPECT_NEAR(got, best, 1e-9);
}

TEST(ModelBased, MipAgreesWithExactSearch) {
  Rig rig = Rig::make();
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Vector> wseq;
    const std::size_t h = 4;
    for (std::size_t t = 0; t < h + 2; ++t)
      wseq.push_back(Vector{rng.uniform(-0.03, 0.03), rng.uniform(-0.03, 0.03)});
    SequenceOracle oracle(wseq);

    ModelBasedConfig ecfg;
    ecfg.horizon = h;
    ecfg.solver = ModelBasedConfig::Solver::kExactSearch;
    ModelBasedPolicy exact(rig.sys, rig.sets, *rig.kappa, Vector{0.0}, oracle, ecfg);

    ModelBasedConfig mcfg = ecfg;
    mcfg.solver = ModelBasedConfig::Solver::kBigMMip;
    ModelBasedPolicy mip(rig.sys, rig.sets, *rig.kappa, Vector{0.0}, oracle, mcfg);

    Vector x0;
    do {
      x0 = Vector{rng.uniform(-1.0, 1.0), rng.uniform(-0.5, 0.5)};
    } while (!rig.sets.x_prime.contains(x0, -1e-6));

    exact.decide(x0, {});
    mip.decide(x0, {});
    ASSERT_EQ(exact.last().feasible, mip.last().feasible) << "trial " << trial;
    if (exact.last().feasible) {
      EXPECT_NEAR(exact.last().planned_cost, mip.last().planned_cost, 1e-5)
          << "trial " << trial;
    }
  }
}

TEST(ModelBased, EnergyOffsetChangesOptimum) {
  // With energy measured around -kappa's output the controller becomes the
  // cheap option; the policy should then prefer running it.
  Rig rig = Rig::make();
  ConstantOracle oracle(Vector{0.0, 0.0});

  // Pick a state where kappa produces a clearly nonzero input.
  Vector x0{1.0, 0.4};
  if (!rig.sets.x_prime.contains(x0)) {
    const auto ball = rig.sets.x_prime.chebyshev();
    x0 = ball.center;
  }
  const Vector u_kappa = rig.k * x0;
  ASSERT_GT(u_kappa.norm1(), 1e-3);

  ModelBasedConfig cfg;
  cfg.horizon = 3;
  cfg.energy_offset = u_kappa;  // energy = ||u - kappa(x0)||: running is free now
  ModelBasedPolicy policy(rig.sys, rig.sets, *rig.kappa, Vector{0.0}, oracle, cfg);
  const int z = policy.decide(x0, {});
  EXPECT_EQ(z, 1);
}

TEST(ModelBased, InfeasibleFallsBackToRun) {
  // Shrink X' to a sliver around the origin and probe from its edge with a
  // large disturbance pushing out: no sequence stays inside, the policy
  // must return 1 (run the controller; Theorem 1 handles the rest).
  Rig rig = Rig::make();
  SafeSets tight = rig.sets;
  tight.x_prime = HPolytope::sym_box(Vector{1e-4, 1e-4});
  ConstantOracle oracle(Vector{0.03, 0.03});
  ModelBasedConfig cfg;
  cfg.horizon = 4;
  ModelBasedPolicy policy(rig.sys, tight, *rig.kappa, Vector{0.0}, oracle, cfg);
  const int z = policy.decide(Vector{0.0, 0.0}, {});
  EXPECT_EQ(z, 1);
  EXPECT_FALSE(policy.last().feasible);
}

TEST(ModelBased, OracleHelpers) {
  SequenceOracle seq({Vector{1.0}, Vector{2.0}});
  EXPECT_DOUBLE_EQ(seq.at(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(seq.at(1)[0], 2.0);
  EXPECT_DOUBLE_EQ(seq.at(99)[0], 2.0);  // repeats the last sample
  ConstantOracle c(Vector{3.0});
  EXPECT_DOUBLE_EQ(c.at(12345)[0], 3.0);
}

// Property: exact search and MIP agree across random states and
// disturbance sequences (the two solvers share only the problem
// definition, so agreement is strong evidence both are right).
class ExactVsMip : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsMip, SameCostSameFirstDecision) {
  static Rig rig = Rig::make();
  Rng rng{static_cast<std::uint64_t>(GetParam() * 6151 + 29)};
  const std::size_t h = 3 + static_cast<std::size_t>(GetParam() % 3);
  std::vector<Vector> wseq;
  for (std::size_t t = 0; t < h; ++t)
    wseq.push_back(Vector{rng.uniform(-0.03, 0.03), rng.uniform(-0.03, 0.03)});
  SequenceOracle oracle(wseq);

  ModelBasedConfig ecfg;
  ecfg.horizon = h;
  ModelBasedPolicy exact(rig.sys, rig.sets, *rig.kappa, Vector{0.0}, oracle, ecfg);
  ModelBasedConfig mcfg = ecfg;
  mcfg.solver = ModelBasedConfig::Solver::kBigMMip;
  ModelBasedPolicy mip(rig.sys, rig.sets, *rig.kappa, Vector{0.0}, oracle, mcfg);

  Vector x0;
  int guard = 0;
  do {
    x0 = Vector{rng.uniform(-1.5, 1.5), rng.uniform(-0.8, 0.8)};
  } while (!rig.sets.x_prime.contains(x0, -1e-6) && ++guard < 1000);
  if (guard >= 1000) GTEST_SKIP() << "could not sample X'";

  exact.decide(x0, {});
  mip.decide(x0, {});
  ASSERT_EQ(exact.last().feasible, mip.last().feasible);
  if (exact.last().feasible) {
    EXPECT_NEAR(exact.last().planned_cost, mip.last().planned_cost, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsMip, ::testing::Range(0, 20));

}  // namespace
