#!/usr/bin/env bash
# Refresh the committed throughput numbers: builds (Release) and runs
# bench_throughput twice -- once with the kernel dispatch free to pick the
# best ISA, once pinned to the scalar tier (OIC_SIMD=off) -- rewriting
# BENCH_throughput.json at the repo root and recording the simd/scalar
# step_ns ratio next to the scalar document in the build tree.
#
#   scripts/bench.sh [--quick] [--json=PATH] [--cases=N] [--steps=N] [--workers=N]
#
#   --quick      CI smoke mode: reduced cases/steps, and the JSON goes to
#                <build>/BENCH_smoke.json instead of the committed file
#                (same schema; scripts/check_bench_json.py validates it).
#   --json=PATH  explicit output path for the main (simd) pass (overrides
#                both defaults).  The scalar pass always lands in the build
#                tree (<main-basename>_scalar.json there), alongside
#                BENCH_simd_ratio.json -- scalar numbers are diagnostics,
#                never the committed reference.
#
# Equivalent CMake target: cmake --build build --target bench-refresh
set -euo pipefail
trap 'echo "bench.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

quick=0
json_path=""
passthrough=()
for arg in "$@"; do
  case "${arg}" in
    --quick) quick=1 ;;
    --json=*) json_path="${arg#--json=}" ;;
    --cases=*|--steps=*|--workers=*) passthrough+=("${arg}") ;;
    *)
      echo "bench.sh: unknown argument '${arg}'" >&2
      exit 2
      ;;
  esac
done

if [[ ${quick} -eq 1 ]]; then
  # Smoke sizing: exercises every code path (legacy + engine + parallel +
  # JSON emission) in a few seconds.  Explicit --cases/--steps/--workers
  # flags stay first so they win (bench_util takes the first match).
  passthrough=("${passthrough[@]+"${passthrough[@]}"}" --cases=4 --steps=40 --workers=2)
  json_path="${json_path:-${build_dir}/BENCH_smoke.json}"
else
  json_path="${json_path:-${repo_root}/BENCH_throughput.json}"
fi

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" --target bench_throughput -j"$(nproc)"

"${build_dir}/bench_throughput" --json="${json_path}" \
  ${passthrough[@]+"${passthrough[@]}"}

# Second pass with the kernel dispatch pinned to the scalar tier: the
# simd/scalar step_ns ratio tracks what the vectorized kernels are worth
# on this machine at this sizing (cold-start-heavy smoke sizings dilute
# it; the full-size run is the representative number).
scalar_json="${build_dir}/$(basename "${json_path%.json}")_scalar.json"
OIC_SIMD=off "${build_dir}/bench_throughput" --json="${scalar_json}" \
  ${passthrough[@]+"${passthrough[@]}"} >/dev/null
ratio_json="${build_dir}/BENCH_simd_ratio.json"
python3 - "${json_path}" "${scalar_json}" "${ratio_json}" <<'EOF'
import json, sys
simd, scalar = (json.load(open(p)) for p in sys.argv[1:3])
s, c = simd["engine_serial"]["step_ns"], scalar["engine_serial"]["step_ns"]
doc = {"isa": simd["meta"]["isa"], "step_ns_simd": s, "step_ns_scalar": c,
       "scalar_over_simd": round(c / s, 4)}
with open(sys.argv[3], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"simd pass ({doc['isa']}): {s:.0f} ns/step | scalar pass: {c:.0f} "
      f"ns/step | ratio {doc['scalar_over_simd']:.2f}x -> {sys.argv[3]}")
EOF
echo "refreshed ${json_path}"
