#!/usr/bin/env bash
# Refresh the committed throughput numbers: builds (Release) and runs
# bench_throughput, rewriting BENCH_throughput.json at the repo root.
#
#   scripts/bench.sh [--quick] [--json=PATH] [--cases=N] [--steps=N] [--workers=N]
#
#   --quick      CI smoke mode: reduced cases/steps, and the JSON goes to
#                <build>/BENCH_smoke.json instead of the committed file
#                (same schema; scripts/check_bench_json.py validates it).
#   --json=PATH  explicit output path (overrides both defaults).
#
# Equivalent CMake target: cmake --build build --target bench-refresh
set -euo pipefail
trap 'echo "bench.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

quick=0
json_path=""
passthrough=()
for arg in "$@"; do
  case "${arg}" in
    --quick) quick=1 ;;
    --json=*) json_path="${arg#--json=}" ;;
    --cases=*|--steps=*|--workers=*) passthrough+=("${arg}") ;;
    *)
      echo "bench.sh: unknown argument '${arg}'" >&2
      exit 2
      ;;
  esac
done

if [[ ${quick} -eq 1 ]]; then
  # Smoke sizing: exercises every code path (legacy + engine + parallel +
  # JSON emission) in a few seconds.  Explicit --cases/--steps/--workers
  # flags stay first so they win (bench_util takes the first match).
  passthrough=("${passthrough[@]+"${passthrough[@]}"}" --cases=4 --steps=40 --workers=2)
  json_path="${json_path:-${build_dir}/BENCH_smoke.json}"
else
  json_path="${json_path:-${repo_root}/BENCH_throughput.json}"
fi

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" --target bench_throughput -j"$(nproc)"

"${build_dir}/bench_throughput" --json="${json_path}" \
  ${passthrough[@]+"${passthrough[@]}"}
echo "refreshed ${json_path}"
