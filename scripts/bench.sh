#!/usr/bin/env bash
# Refresh the committed throughput numbers: builds (Release) and runs
# bench_throughput, rewriting BENCH_throughput.json at the repo root.
#
#   scripts/bench.sh [--cases=N] [--steps=N] [--workers=N]
#
# Equivalent CMake target: cmake --build build --target bench-refresh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" --target bench_throughput -j"$(nproc)"

"${build_dir}/bench_throughput" --json="${repo_root}/BENCH_throughput.json" "$@"
echo "refreshed ${repo_root}/BENCH_throughput.json"
