#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml -- the single source of truth for
# what CI runs, so the tier-1 command and the workflow cannot drift.  The
# workflow jobs call this script with step flags; running it bare executes
# the full pipeline for one matrix cell:
#
#   scripts/ci.sh [--compiler gcc|clang] [--config Release|Sanitize]
#                 [--build-dir DIR] [--build-only] [--bench-only]
#                 [--train-only] [--cert-only] [--mc-only] [--mc-rare-only]
#                 [--fault-only] [--serve-only] [--format-only]
#
#   build+test   configure with -Werror, build everything, ctest twice:
#                once as built (AVX2 dispatch on capable hosts) and once
#                with OIC_SIMD=off pinning the scalar kernel tier; under
#                config Sanitize this runs the AVX2 TU under ASan/UBSan
#   bench smoke  scripts/bench.sh --quick (simd + scalar passes, ratio
#                recorded) + JSON schema check against the committed
#                BENCH_throughput.json + the perf-smoke guard (step_ns
#                must stay within 20% of the smoke-adjusted reference)
#   train smoke  tiny-budget oic_train on lane-keep, then oic_eval deploys
#                the serialized agent via --policies drl:<path>; both JSON
#                documents pass check_bench_json.py --self
#   cert smoke   oic_cert synth -> verify over the registry, then oic_eval
#                --cert-dir reuses the cache (including a burst:<k> policy);
#                the sweep JSON passes check_bench_json.py --self
#   mc smoke     a tiny oic_mc campaign run twice: interrupted slices
#                resuming a checkpoint vs one uninterrupted reference; the
#                statistics must be bit-identical, and the campaign JSON
#                (violation-rate Wilson CIs included) passes
#                check_bench_json.py --self
#   mc-rare      a rare1d importance-splitting campaign run three ways
#                (uninterrupted reference, interrupted checkpoint slice,
#                resume -- each at a different worker count): the
#                mc_splitting statistics must be bit-identical, the
#                batched 95% CI must cover the analytic p_true (~1.5e-8),
#                no batch may go extinct, and both JSON documents pass
#                check_bench_json.py --self
#   fault smoke  an oic_mc campaign under the lossy fault preset: the run
#                must degrade (degraded steps > 0) without ever leaving the
#                hard safe set X, its JSON must pass check_bench_json.py
#                --self (which enforces left_x_episodes == 0 for faulted
#                documents), and the CLI error paths (malformed --faults,
#                unknown preset) must exit nonzero with a diagnostic
#   serve smoke  an oic_loadgen burst against the in-process monitor server
#                (captured with --emit), the capture replayed through the
#                standalone oic_serve over stdio, the same traffic driven
#                against a background `oic_serve --listen` over a real
#                loopback socket (burst:<k> sessions and a sharded tick,
#                shut down with SIGINT), decision counts diffed across the
#                in-process, stdio, and socket runs, every JSON report
#                passing check_bench_json.py --self, and the
#                malformed-request error path (garbage on --in must exit
#                nonzero with an oic_serve: diagnostic)
#   format       clang-format --dry-run -Werror over src/ tests/ bench/
#                tools/ (blocking; skipped with a warning when clang-format
#                is absent)
#
# Config "Sanitize" is Debug + address/undefined sanitizers.
set -euo pipefail
trap 'echo "ci.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

compiler=gcc
config=Release
build_dir=""
do_build=1
do_bench=1
do_train=1
do_cert=1
do_mc=1
do_mcrare=1
do_fault=1
do_serve=1
do_format=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --compiler) compiler="$2"; shift 2 ;;
    --compiler=*) compiler="${1#*=}"; shift ;;
    --config) config="$2"; shift 2 ;;
    --config=*) config="${1#*=}"; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --build-dir=*) build_dir="${1#*=}"; shift ;;
    --build-only) do_bench=0; do_train=0; do_cert=0; do_mc=0; do_mcrare=0
                  do_fault=0; do_serve=0; do_format=0; shift ;;
    --bench-only) do_build=0; do_train=0; do_cert=0; do_mc=0; do_mcrare=0
                  do_fault=0; do_serve=0; do_format=0; shift ;;
    --train-only) do_build=0; do_bench=0; do_cert=0; do_mc=0; do_mcrare=0
                  do_fault=0; do_serve=0; do_format=0; shift ;;
    --cert-only) do_build=0; do_bench=0; do_train=0; do_mc=0; do_mcrare=0
                 do_fault=0; do_serve=0; do_format=0; shift ;;
    --mc-only) do_build=0; do_bench=0; do_train=0; do_cert=0; do_mcrare=0
               do_fault=0; do_serve=0; do_format=0; shift ;;
    --mc-rare-only) do_build=0; do_bench=0; do_train=0; do_cert=0; do_mc=0
                    do_fault=0; do_serve=0; do_format=0; shift ;;
    --fault-only) do_build=0; do_bench=0; do_train=0; do_cert=0; do_mc=0
                  do_mcrare=0; do_serve=0; do_format=0; shift ;;
    --serve-only) do_build=0; do_bench=0; do_train=0; do_cert=0; do_mc=0
                  do_mcrare=0; do_fault=0; do_format=0; shift ;;
    --format-only) do_build=0; do_bench=0; do_train=0; do_cert=0; do_mc=0
                   do_mcrare=0; do_fault=0; do_serve=0; shift ;;
    *) echo "ci.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

case "${compiler}" in
  gcc) cxx=g++ ;;
  clang) cxx=clang++ ;;
  *) echo "ci.sh: unknown compiler '${compiler}' (gcc|clang)" >&2; exit 2 ;;
esac

case "${config}" in
  Release) cmake_type=Release; sanitize=OFF ;;
  Sanitize) cmake_type=Debug; sanitize=ON ;;
  *) echo "ci.sh: unknown config '${config}' (Release|Sanitize)" >&2; exit 2 ;;
esac

build_dir="${build_dir:-${repo_root}/build-ci-${compiler}-${config}}"

if [[ ${do_build} -eq 1 ]]; then
  if ! command -v "${cxx}" >/dev/null; then
    echo "ci.sh: ${cxx} not installed" >&2
    exit 2
  fi
  echo "=== [${compiler}/${config}] configure + build (${build_dir}) ==="
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE="${cmake_type}" \
    -DCMAKE_CXX_COMPILER="${cxx}" \
    -DOIC_SANITIZE="${sanitize}" \
    -DOIC_WERROR=ON
  cmake --build "${build_dir}" -j"$(nproc)"

  echo "=== [${compiler}/${config}] ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"

  # Same suite with the kernel dispatch pinned to the scalar tier: the
  # env kill switch must leave every result bit-identical, and a host
  # without AVX2 must be a first-class configuration, not a fallback we
  # only think works.  (Under config Sanitize this also puts the AVX2 TU
  # itself under ASan/UBSan in the first pass -- the sanitizer flags are
  # global, the per-file -mavx2 only adds to them.)
  echo "=== [${compiler}/${config}] ctest (OIC_SIMD=off, scalar tier) ==="
  OIC_SIMD=off ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"
fi

if [[ ${do_bench} -eq 1 ]]; then
  echo "=== bench smoke + JSON schema check ==="
  "${repo_root}/scripts/bench.sh" --quick
  python3 "${repo_root}/scripts/check_bench_json.py" \
    "${repo_root}/BENCH_throughput.json" "${repo_root}/build/BENCH_smoke.json"

  echo "=== perf smoke guard: engine_serial step_ns vs committed reference ==="
  # The smoke sizing (cases=4, steps=40) amortizes cold starts over far
  # fewer steps than the committed full-size run, which measures ~2.0x the
  # full-size step_ns on the reference machine (OIC_PERF_SMOKE_FACTOR).
  # Budget = ref * factor * tolerance: a regression >20% over the
  # smoke-adjusted baseline (OIC_PERF_TOLERANCE=1.2) fails the job.
  OIC_PERF_SMOKE_FACTOR="${OIC_PERF_SMOKE_FACTOR:-2.0}" \
  OIC_PERF_TOLERANCE="${OIC_PERF_TOLERANCE:-1.2}" \
  python3 - "${repo_root}/BENCH_throughput.json" \
    "${repo_root}/build/BENCH_smoke.json" <<'EOF'
import json, os, sys
ref, smoke = (json.load(open(p)) for p in sys.argv[1:3])
ref_ns = ref["engine_serial"]["step_ns"]
got_ns = smoke["engine_serial"]["step_ns"]
factor = float(os.environ["OIC_PERF_SMOKE_FACTOR"])
tol = float(os.environ["OIC_PERF_TOLERANCE"])
budget = ref_ns * factor * tol
verdict = "ok" if got_ns <= budget else "REGRESSION"
print(f"perf smoke: {got_ns:.0f} ns/step vs budget {budget:.0f} "
      f"(ref {ref_ns:.0f} x smoke-sizing {factor} x tolerance {tol}): {verdict}")
if got_ns > budget:
    sys.exit("perf smoke: engine_serial step_ns regressed past the budget -- "
             "rerun scripts/bench.sh on the reference machine if this is an "
             "intentional trade, otherwise find the regression")
EOF
fi

if [[ ${do_train} -eq 1 ]]; then
  echo "=== train smoke: oic_train -> serialize -> oic_eval --policies drl: ==="
  smoke_build="${repo_root}/build"
  cmake -B "${smoke_build}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${smoke_build}" --target oic_train oic_eval -j"$(nproc)"
  agents_dir="${smoke_build}/ci-agents"
  mkdir -p "${agents_dir}"
  "${smoke_build}/oic_train" --plant lane-keep --scenario sine --seeds 7 \
    --episodes 10 --steps 40 --workers 2 --out "${agents_dir}" \
    --json "${smoke_build}/TRAIN_smoke.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${smoke_build}/TRAIN_smoke.json"
  "${smoke_build}/oic_eval" --plant lane-keep --scenario sine \
    --policies "bang-bang,drl:${agents_dir}/lane-keep__sine__seed7.agent" \
    --cases 4 --steps 40 --workers 2 --json "${smoke_build}/EVAL_smoke.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${smoke_build}/EVAL_smoke.json"
fi

if [[ ${do_cert} -eq 1 ]]; then
  echo "=== cert smoke: oic_cert synth -> verify -> oic_eval --cert-dir reuse ==="
  smoke_build="${repo_root}/build"
  cmake -B "${smoke_build}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${smoke_build}" --target oic_cert oic_eval -j"$(nproc)"
  certs_dir="${smoke_build}/ci-certs"
  rm -rf "${certs_dir}"
  "${smoke_build}/oic_cert" synth --cert-dir "${certs_dir}"
  "${smoke_build}/oic_cert" verify --cert-dir "${certs_dir}"
  "${smoke_build}/oic_cert" ls --cert-dir "${certs_dir}"
  # The sweep must *reuse* the cache (no synthesis): a burst:<k> policy
  # exercises the certificate's k-step ladder end to end.
  "${smoke_build}/oic_eval" --plant lane-keep,toy2d --scenario sine \
    --policies "bang-bang,burst:3" --cases 4 --steps 40 --workers 2 \
    --cert-dir "${certs_dir}" --json "${smoke_build}/EVAL_cert_smoke.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${smoke_build}/EVAL_cert_smoke.json"
fi

if [[ ${do_mc} -eq 1 ]]; then
  echo "=== mc smoke: oic_mc campaign, checkpoint resume == uninterrupted ==="
  smoke_build="${repo_root}/build"
  cmake -B "${smoke_build}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${smoke_build}" --target oic_mc -j"$(nproc)"
  mc_dir="${smoke_build}/ci-mc"
  rm -rf "${mc_dir}"
  mkdir -p "${mc_dir}"
  mc_args=(--plants toy2d --families bursts,mixed --policies bang-bang,periodic-5
           --episodes 48 --steps 40 --block 8 --cert-dir "${mc_dir}/certs")
  # Uninterrupted reference...
  "${smoke_build}/oic_mc" "${mc_args[@]}" --workers 2 \
    --json "${mc_dir}/MC_ref.json"
  # ...vs two interrupted slices resuming the checkpoint (different worker
  # counts on purpose: neither slicing nor sharding may change the stats).
  "${smoke_build}/oic_mc" "${mc_args[@]}" --workers 1 --checkpoint-blocks 2 \
    --max-blocks 5 --checkpoint "${mc_dir}/mc.ck"
  "${smoke_build}/oic_mc" "${mc_args[@]}" --workers 3 --checkpoint-blocks 2 \
    --checkpoint "${mc_dir}/mc.ck" --json "${mc_dir}/MC_resumed.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self "${mc_dir}/MC_ref.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${mc_dir}/MC_resumed.json"
  python3 - "${mc_dir}/MC_ref.json" "${mc_dir}/MC_resumed.json" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
for doc in (a, b):  # drop timing / execution-only fields
    doc["campaign"] = None
    doc["config"]["workers"] = doc["config"]["checkpoint"] = None
if a != b:
    sys.exit("mc smoke: resumed campaign statistics differ from the "
             "uninterrupted reference")
print("mc smoke: checkpoint-resumed statistics are bit-identical")
EOF
fi

if [[ ${do_mcrare} -eq 1 ]]; then
  echo "=== mc-rare: importance splitting vs the rare1d analytic ground truth ==="
  smoke_build="${repo_root}/build"
  cmake -B "${smoke_build}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${smoke_build}" --target oic_mc -j"$(nproc)"
  rare_dir="${smoke_build}/ci-mc-rare"
  rm -rf "${rare_dir}"
  mkdir -p "${rare_dir}"
  # One seed of the coverage bed from tests/test_mc_splitting.cpp: the
  # batched estimator's own 95% CI must cover the closed-form p_true
  # (~1.5e-8, a probability crude counting at this budget cannot even
  # see).  Sizing matches the test's coverage assertion (512 clones x 16
  # independent batches, ~2 s).
  rare_args=(--plants rare1d --splitting --split-trials 512 --split-batches 16
             --steps 100 --seed 7)
  # Uninterrupted reference...
  "${smoke_build}/oic_mc" "${rare_args[@]}" --workers 2 \
    --json "${rare_dir}/MC_rare_ref.json"
  # ...vs an interrupted slice (checkpoint granularity is one splitting
  # stage) resumed at a third worker count: neither slicing nor sharding
  # may change a single reported digit.
  "${smoke_build}/oic_mc" "${rare_args[@]}" --workers 1 --max-blocks 5 \
    --checkpoint "${rare_dir}/rare.ck"
  "${smoke_build}/oic_mc" "${rare_args[@]}" --workers 3 \
    --checkpoint "${rare_dir}/rare.ck" --json "${rare_dir}/MC_rare_resumed.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${rare_dir}/MC_rare_ref.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${rare_dir}/MC_rare_resumed.json"
  python3 - "${rare_dir}/MC_rare_ref.json" \
    "${rare_dir}/MC_rare_resumed.json" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
for doc in (a, b):  # drop timing / execution-only fields
    doc["campaign"] = None
    doc["config"]["workers"] = doc["config"]["checkpoint"] = None
if a != b:
    sys.exit("mc-rare: resumed splitting statistics differ from the "
             "uninterrupted reference")
cell = a["mc_splitting"]["cells"][0]
unit = cell["units"][0]
p_true = cell["p_true"]
lo, hi = unit["ci95"]
if not (0.0 < p_true < 1.0):
    sys.exit("mc-rare: rare1d must report its analytic p_true")
if not (lo <= p_true <= hi):
    sys.exit(f"mc-rare: 95% CI [{lo:.3e}, {hi:.3e}] misses the analytic "
             f"p_true {p_true:.3e}")
if unit["extinct_batches"] != 0:
    sys.exit("mc-rare: no batch may go extinct at this sizing")
print(f"mc-rare: resume bit-identical; CI [{lo:.3e}, {hi:.3e}] covers "
      f"p_true {p_true:.3e} ({unit['episodes']} episodes, "
      f"p_hat {unit['p_hat']:.3e})")
EOF
fi

if [[ ${do_fault} -eq 1 ]]; then
  echo "=== fault smoke: oic_mc under the lossy preset + CLI error paths ==="
  smoke_build="${repo_root}/build"
  cmake -B "${smoke_build}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${smoke_build}" --target oic_mc oic_eval -j"$(nproc)"
  fault_dir="${smoke_build}/ci-fault"
  rm -rf "${fault_dir}"
  mkdir -p "${fault_dir}"
  # A faulted campaign must exit 0: the loop degrades (stale estimates,
  # dropped packets) but never leaves the hard safe set X.
  "${smoke_build}/oic_mc" --plants toy2d,quad-alt --families bursts,mixed \
    --policies bang-bang --episodes 48 --steps 40 --block 8 --workers 2 \
    --faults lossy --cert-dir "${fault_dir}/certs" \
    --json "${fault_dir}/MC_fault.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${fault_dir}/MC_fault.json"
  python3 - "${fault_dir}/MC_fault.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
if not doc["config"]["faults"]:
    sys.exit("fault smoke: config.faults must carry the canonical spec")
degraded = sum(e["degraded_steps"]
               for cell in doc["results"]
               for e in [cell["baseline"]] + cell["policies"])
if degraded == 0:
    sys.exit("fault smoke: the lossy preset must produce degraded steps")
print(f"fault smoke: {degraded} degraded steps, zero hard violations")
EOF
  # Error paths: malformed specs and unknown presets must die with a
  # diagnostic and a nonzero exit, from both faulted CLIs.
  for bad in "meas_drop:1.5" "no-such-preset" "meas_drop:0.1,meas_drop:0.2"; do
    if "${smoke_build}/oic_mc" --plants toy2d --families mixed \
         --episodes 8 --steps 10 --faults "${bad}" 2>"${fault_dir}/err.txt"; then
      echo "fault smoke: oic_mc accepted bad --faults '${bad}'" >&2
      exit 1
    fi
    grep -q "oic_mc:" "${fault_dir}/err.txt" || {
      echo "fault smoke: no diagnostic for bad --faults '${bad}'" >&2
      exit 1
    }
  done
  if "${smoke_build}/oic_eval" --plant toy2d --scenario sine --cases 2 \
       --steps 10 --faults "act_drop:2" 2>"${fault_dir}/err.txt"; then
    echo "fault smoke: oic_eval accepted bad --faults" >&2
    exit 1
  fi
  grep -q "oic_eval:" "${fault_dir}/err.txt" || {
    echo "fault smoke: oic_eval emitted no diagnostic" >&2
    exit 1
  }
  echo "fault smoke: CLI error paths diagnose and exit nonzero"
fi

if [[ ${do_serve} -eq 1 ]]; then
  echo "=== serve smoke: oic_loadgen burst -> oic_serve replay + error path ==="
  smoke_build="${repo_root}/build"
  cmake -B "${smoke_build}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${smoke_build}" --target oic_serve oic_loadgen -j"$(nproc)"
  serve_dir="${smoke_build}/ci-serve"
  rm -rf "${serve_dir}"
  mkdir -p "${serve_dir}"
  # Burst against the in-process server, capturing the exact request
  # traffic (client-assigned session ids make the capture replayable).
  "${smoke_build}/oic_loadgen" --plants toy2d --sessions 256 --steps 5 \
    --clients 3 --workers 2 --emit "${serve_dir}/burst.reqs" \
    --json "${serve_dir}/LOADGEN_smoke.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${serve_dir}/LOADGEN_smoke.json"
  # Replay the capture through the standalone server; a fresh server fed
  # the same requests must issue the same number of decisions and no
  # errors.
  "${smoke_build}/oic_serve" --in "${serve_dir}/burst.reqs" \
    --out "${serve_dir}/burst.resps" --workers 2 \
    --json "${serve_dir}/SERVE_smoke.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${serve_dir}/SERVE_smoke.json"
  python3 - "${serve_dir}/LOADGEN_smoke.json" "${serve_dir}/SERVE_smoke.json" <<'EOF'
import json, sys
lg, sv = (json.load(open(p)) for p in sys.argv[1:3])
want = lg["loadgen"]["decisions"]
got = sv["serve"]["decisions"]
if want == 0 or got != want:
    sys.exit(f"serve smoke: replay produced {got} decisions, expected {want}")
if sv["serve"]["errors"] or sv["serve"]["invariant_errors"]:
    sys.exit("serve smoke: replay drew error responses from a clean capture")
print(f"serve smoke: replay reproduced all {got} decisions, zero errors")
EOF
  # The same traffic over a real loopback socket: a background
  # `oic_serve --listen` (ephemeral port published via --port-file, tick
  # sharded across two workers) serves an oic_loadgen --connect fleet with
  # burst:<k> sessions in the mix, then shuts down cleanly on SIGINT.  The
  # decision count must match the in-process and stdio runs.
  "${smoke_build}/oic_serve" --listen 0 --port-file "${serve_dir}/serve.port" \
    --workers 2 --tick-workers 2 \
    --json "${serve_dir}/SERVE_socket_smoke.json" 2>"${serve_dir}/serve.log" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "${serve_dir}/serve.port" ]] && break
    sleep 0.1
  done
  [[ -s "${serve_dir}/serve.port" ]] || {
    echo "serve smoke: oic_serve --listen never published its port" >&2
    exit 1
  }
  "${smoke_build}/oic_loadgen" --plants toy2d --sessions 256 --steps 5 \
    --clients 3 --policy "bang-bang,burst:3" \
    --connect "127.0.0.1:$(cat "${serve_dir}/serve.port")" \
    --json "${serve_dir}/LOADGEN_socket_smoke.json"
  kill -INT "${serve_pid}"
  wait "${serve_pid}"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${serve_dir}/LOADGEN_socket_smoke.json"
  python3 "${repo_root}/scripts/check_bench_json.py" --self \
    "${serve_dir}/SERVE_socket_smoke.json"
  python3 - "${serve_dir}/LOADGEN_smoke.json" \
    "${serve_dir}/LOADGEN_socket_smoke.json" \
    "${serve_dir}/SERVE_socket_smoke.json" <<'EOF'
import json, sys
inproc, socklg, socksv = (json.load(open(p)) for p in sys.argv[1:4])
want = inproc["loadgen"]["decisions"]
got_client = socklg["loadgen"]["decisions"]
got_server = socksv["serve"]["decisions"]
if want == 0 or got_client != want or got_server != want:
    sys.exit(f"serve smoke: socket run decisions (client {got_client}, "
             f"server {got_server}) != in-process run ({want})")
if socklg["loadgen"]["errors"] or socksv["serve"]["errors"] \
        or socksv["serve"]["invariant_errors"]:
    sys.exit("serve smoke: socket run drew error responses")
if socksv["config"]["transport"] != "socket":
    sys.exit("serve smoke: oic_serve --listen must report transport=socket")
if socklg["loadgen"]["burst_sessions"] == 0:
    sys.exit("serve smoke: the socket fleet must include burst sessions")
print(f"serve smoke: socket run reproduced all {want} decisions "
      f"(stdio, socket, and in-process transports agree), zero errors")
EOF
  # Error path: a malformed request stream must die with a diagnostic and
  # a nonzero exit, never hang or answer garbage.
  printf 'oic-serve v1\nrequests 1\nping 1\nend\n' >"${serve_dir}/bad.reqs"
  if "${smoke_build}/oic_serve" --in "${serve_dir}/bad.reqs" \
       --out /dev/null 2>"${serve_dir}/err.txt"; then
    echo "serve smoke: oic_serve accepted a malformed request stream" >&2
    exit 1
  fi
  grep -q "oic_serve:" "${serve_dir}/err.txt" || {
    echo "serve smoke: no diagnostic for the malformed request stream" >&2
    exit 1
  }
  echo "serve smoke: malformed streams diagnose and exit nonzero"
fi

if [[ ${do_format} -eq 1 ]]; then
  echo "=== clang-format check (src/ tests/ bench/ tools/) ==="
  # Blocking since the one-time tree-wide normalization pass: drift fails
  # the pipeline.  This script is the only place that decides.
  if command -v clang-format >/dev/null; then
    find "${repo_root}/src" "${repo_root}/tests" "${repo_root}/bench" \
         "${repo_root}/tools" -name '*.cpp' -o -name '*.hpp' | sort \
      | xargs clang-format --dry-run -Werror
    echo "format check passed"
  else
    echo "ci.sh: WARNING: clang-format not installed, format check skipped" >&2
  fi
fi

echo "ci.sh: all requested steps passed"
