#!/usr/bin/env python3
"""Validate a bench JSON document against a reference document's schema.

Usage: check_bench_json.py REFERENCE CANDIDATE

Recursively compares the *key structure* of the two JSON documents: every
key path present in REFERENCE must exist in CANDIDATE with the same JSON
type, and vice versa (values are free to differ -- they are measurements).
Array elements are checked against the first element of the reference
array, so homogeneous result lists of different lengths compare fine.

Also enforces the semantic invariants every bench document shares:
  * "safety_violations" must be false (Theorem 1: the monitor never lets
    the loop leave X);
  * "parallel_bit_identical", when present, must be true.

The CI bench-smoke job runs this over (committed BENCH_throughput.json,
fresh smoke output); oic_eval documents can be checked against a committed
reference the same way.
"""

import json
import sys


def type_name(value):
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    return "null"


def compare(reference, candidate, path, errors):
    ref_type, cand_type = type_name(reference), type_name(candidate)
    if ref_type != cand_type:
        errors.append(f"{path or '<root>'}: type {cand_type}, expected {ref_type}")
        return
    if ref_type == "object":
        for key in reference:
            if key not in candidate:
                errors.append(f"{path or '<root>'}: missing key '{key}'")
            else:
                compare(reference[key], candidate[key], f"{path}.{key}".lstrip("."),
                        errors)
        for key in candidate:
            if key not in reference:
                errors.append(f"{path or '<root>'}: unexpected key '{key}'")
    elif ref_type == "array" and reference:
        if not candidate:
            errors.append(f"{path or '<root>'}: empty array, expected elements "
                          f"shaped like the reference's")
        for i, item in enumerate(candidate):
            compare(reference[0], item, f"{path}[{i}]", errors)


def check_semantics(candidate, errors):
    if candidate.get("safety_violations") is not False:
        errors.append("safety_violations: must be present and false (Theorem 1)")
    if "parallel_bit_identical" in candidate and \
            candidate["parallel_bit_identical"] is not True:
        errors.append("parallel_bit_identical: must be true")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        reference = json.load(f)
    with open(argv[2]) as f:
        candidate = json.load(f)

    errors = []
    compare(reference, candidate, "", errors)
    check_semantics(candidate, errors)

    if errors:
        print(f"{argv[2]}: schema check FAILED against {argv[1]}:")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(f"{argv[2]}: schema matches {argv[1]}, safety invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
