#!/usr/bin/env python3
"""Validate a bench JSON document against a reference document's schema.

Usage: check_bench_json.py REFERENCE CANDIDATE
       check_bench_json.py --self CANDIDATE

Recursively compares the *key structure* of the two JSON documents: every
key path present in REFERENCE must exist in CANDIDATE with the same JSON
type, and vice versa (values are free to differ -- they are measurements).
Array elements are checked against the first element of the reference
array, so homogeneous result lists of different lengths compare fine.
With --self only the shared semantic invariants are enforced (for
documents, like oic_train's, that have no committed reference).

Also enforces the semantic invariants every bench document shares:
  * "safety_violations" must be false (Theorem 1: the monitor never lets
    the loop leave X);
  * "schema_version" must be a positive integer (the shared jsonout::Doc
    envelope every producer stamps);
  * "parallel_bit_identical", when present, must be true;
  * "meta" must carry the build provenance strings git_sha / compiler /
    build_type (common/buildinfo.hpp);
  * "train_minibatch.bit_identical", when present, must be true (the
    batched DQN update path must match the per-sample path exactly);
  * "cert_cold_start", when present, must report bit_identical == true
    (a loaded certificate must reproduce fresh synthesis exactly) and a
    speedup >= 1 over at least one plant (the cache must never be slower
    than synthesizing);
  * "mc_campaign" (bench_throughput's Monte-Carlo section), when present,
    must report bit_identical == true (campaign statistics must not depend
    on the worker count) and violations == false;
  * "campaign" (an oic_mc document), when present, must report at least
    one aggregated episode, and every results[] entry must carry
    violation_ci95 intervals with 0 <= lo <= hi <= 1 and hi > lo for the
    baseline and every policy (the CI widths are the point of a campaign);
  * every campaign results[] entry must also carry the per-step fault
    accounting: consistent counters (degraded_steps <= steps, stale_forced
    and policy_unavail <= degraded_steps, meas/act_dropped <= steps) and a
    well-formed degraded_ci95 Wilson interval -- all-zero counters on
    fault-free campaigns, so one schema covers both modes;
  * when config.faults is a non-empty spec string (a faulted campaign),
    every results[] entry must report left_x_episodes == 0: under faults
    XI excursions are measured degradation, but leaving the hard safe set
    X is a safety violation and fails the document;
  * "mc_splitting" (an oic_mc --splitting / --falsify document), when
    present, requires config.splitting or config.falsify plus positive
    split_trials / split_batches / split_stages and split_quantile in
    (0, 1); every cell must name a plant and family, every unit must
    carry p_hat in [0, 1], a well-ordered ci95 containing p_hat, an
    extinct_batches count consistent with its batches[], and per batch
    a level ladder with matching survivor counts, each <= trials (an
    all-splitting campaign legitimately emits an empty "results" array,
    which is tolerated when config.splitting is true);
  * "kernels" (the per-ISA dispatch-table microbench), when present, must
    report avx2_native as a bool and, for every kernel, a positive
    bytes_per_op and positive ns_per_op / gb_per_s under both the scalar
    and the avx2 table (the fallback contract keeps both columns
    populated even on scalar-only hosts);
  * "bench_serve" (bench_throughput's monitor-service section), when
    present, must report bit_identical == true (batched decisions must
    reproduce the per-session IntermittentController path exactly),
    errors == 0, sessions >= 10000 (the service-capacity contract),
    0 <= p50_ms <= p99_ms, sessions_per_s > 0, a known transport
    ("socket"/"stdio"/"inproc"), tick_workers >= 1, and a non-negative
    burst_sessions count; each serve_tick_latency_ms entry must also
    carry ordered submit_/wait_ component percentiles (the round-trip
    split that reads transport cost against tick cost).

The CI bench-smoke job runs this over (committed BENCH_throughput.json,
fresh smoke output); the train-smoke job uses --self on the oic_train and
oic_eval documents; the mc-smoke job uses --self on the oic_mc document.
"""

import json
import sys


def type_name(value):
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    return "null"


def compare(reference, candidate, path, errors, allow_empty=frozenset()):
    ref_type, cand_type = type_name(reference), type_name(candidate)
    if ref_type != cand_type:
        errors.append(f"{path or '<root>'}: type {cand_type}, expected {ref_type}")
        return
    if ref_type == "object":
        for key in reference:
            if key not in candidate:
                errors.append(f"{path or '<root>'}: missing key '{key}'")
            else:
                compare(reference[key], candidate[key], f"{path}.{key}".lstrip("."),
                        errors, allow_empty)
        for key in candidate:
            if key not in reference:
                errors.append(f"{path or '<root>'}: unexpected key '{key}'")
    elif ref_type == "array" and reference:
        if not candidate and path not in allow_empty:
            errors.append(f"{path or '<root>'}: empty array, expected elements "
                          f"shaped like the reference's")
        for i, item in enumerate(candidate):
            compare(reference[0], item, f"{path}[{i}]", errors, allow_empty)


def check_semantics(candidate, errors):
    if candidate.get("safety_violations") is not False:
        errors.append("safety_violations: must be present and false (Theorem 1)")
    version = candidate.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        errors.append("schema_version: must be a positive integer (the shared "
                      "jsonout::Doc envelope)")
    if "parallel_bit_identical" in candidate and \
            candidate["parallel_bit_identical"] is not True:
        errors.append("parallel_bit_identical: must be true")

    meta = candidate.get("meta")
    if not isinstance(meta, dict):
        errors.append("meta: must be present (build provenance object)")
    else:
        for key in ("git_sha", "compiler", "build_type"):
            if not isinstance(meta.get(key), str) or not meta.get(key):
                errors.append(f"meta.{key}: must be a non-empty string")
        if "isa" in meta and meta["isa"] not in ("scalar", "avx2"):
            errors.append("meta.isa: must be 'scalar' or 'avx2' (the kernel "
                          "dispatch tier the producer resolved to)")

    train = candidate.get("train_minibatch")
    if train is not None and train.get("bit_identical") is not True:
        errors.append("train_minibatch.bit_identical: must be true")

    mc = candidate.get("mc_campaign")
    if mc is not None:
        if mc.get("bit_identical") is not True:
            errors.append("mc_campaign.bit_identical: must be true (campaign "
                          "stats must not depend on the worker count)")
        if mc.get("violations") is not False:
            errors.append("mc_campaign.violations: must be false (Theorem 1)")

    campaign = candidate.get("campaign")
    if campaign is not None:
        episodes = campaign.get("episodes")
        if not isinstance(episodes, int) or isinstance(episodes, bool) \
                or episodes < 1:
            errors.append("campaign.episodes: must be a positive integer")
        config = candidate.get("config") or {}
        faulted = bool(config.get("faults"))

        def count(entry, key, path):
            v = entry.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{path}.{key}: must be a non-negative integer")
                return None
            return v

        for i, cell in enumerate(candidate.get("results") or []):
            entries = [("baseline", cell.get("baseline"))] + \
                [(f"policies[{j}]", p) for j, p in
                 enumerate(cell.get("policies") or [])]
            for label, entry in entries:
                path = f"results[{i}].{label}"
                if not isinstance(entry, dict):
                    errors.append(f"{path}: missing stats object")
                    continue
                for key in ("violation_ci95", "degraded_ci95"):
                    ci = entry.get(key)
                    if not (isinstance(ci, list) and len(ci) == 2 and
                            all(isinstance(v, (int, float)) and
                                not isinstance(v, bool) for v in ci) and
                            0.0 <= ci[0] <= ci[1] <= 1.0 and ci[1] > ci[0]):
                        errors.append(f"{path}.{key}: must be a "
                                      f"[lo, hi] interval with 0 <= lo < hi <= 1")
                steps = count(entry, "steps", path)
                degraded = count(entry, "degraded_steps", path)
                stale = count(entry, "stale_forced", path)
                policy_unavail = count(entry, "policy_unavail", path)
                meas = count(entry, "meas_dropped", path)
                act = count(entry, "act_dropped", path)
                if None not in (steps, degraded, stale, policy_unavail,
                                meas, act):
                    if degraded > steps:
                        errors.append(f"{path}: degraded_steps > steps")
                    if stale > degraded or policy_unavail > degraded:
                        errors.append(f"{path}: stale_forced/policy_unavail "
                                      f"exceed degraded_steps")
                    if meas > steps or act > steps:
                        errors.append(f"{path}: meas/act_dropped > steps")
                left_x = count(entry, "left_x_episodes", path)
                if faulted and left_x:
                    errors.append(f"{path}.left_x_episodes: must be 0 -- a "
                                  f"faulted campaign may degrade (XI "
                                  f"excursions) but never leave X")

    split = candidate.get("mc_splitting")
    if split is not None:
        config = candidate.get("config") or {}
        if config.get("splitting") is not True and \
                config.get("falsify") is not True:
            errors.append("mc_splitting: present without config.splitting or "
                          "config.falsify")
        for key in ("split_trials", "split_batches", "split_stages"):
            v = config.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                errors.append(f"config.{key}: must be a positive integer on "
                              f"a splitting document")
        q = config.get("split_quantile")
        if not isinstance(q, (int, float)) or isinstance(q, bool) \
                or not 0.0 < q < 1.0:
            errors.append("config.split_quantile: must be a number in (0, 1)")

        def prob(value):
            return isinstance(value, (int, float)) and \
                not isinstance(value, bool) and 0.0 <= value <= 1.0

        cells = split.get("cells")
        if not isinstance(cells, list) or not cells:
            errors.append("mc_splitting.cells: must be a non-empty array")
            cells = []
        for i, cell in enumerate(cells):
            path = f"mc_splitting.cells[{i}]"
            if not isinstance(cell, dict):
                errors.append(f"{path}: must be an object")
                continue
            for key in ("plant", "family"):
                if not isinstance(cell.get(key), str) or not cell.get(key):
                    errors.append(f"{path}.{key}: must be a non-empty string")
            p_true = cell.get("p_true")
            if p_true is not None and not (prob(p_true) and 0.0 < p_true < 1.0):
                errors.append(f"{path}.p_true: must be a probability in (0, 1)")
            for j, unit in enumerate(cell.get("units") or []):
                upath = f"{path}.units[{j}]"
                if not isinstance(unit, dict):
                    errors.append(f"{upath}: must be an object")
                    continue
                if not isinstance(unit.get("policy"), str) \
                        or not unit.get("policy"):
                    errors.append(f"{upath}.policy: must be a non-empty string")
                if not prob(unit.get("p_hat")):
                    errors.append(f"{upath}.p_hat: must be a probability "
                                  f"in [0, 1]")
                ci = unit.get("ci95")
                if not (isinstance(ci, list) and len(ci) == 2 and
                        all(prob(v) for v in ci) and ci[0] <= ci[1]):
                    errors.append(f"{upath}.ci95: must be a [lo, hi] interval "
                                  f"with 0 <= lo <= hi <= 1")
                trials = unit.get("trials")
                if not isinstance(trials, int) or isinstance(trials, bool) \
                        or trials < 1:
                    errors.append(f"{upath}.trials: must be a positive integer")
                    trials = None
                episodes = unit.get("episodes")
                if not isinstance(episodes, int) or isinstance(episodes, bool) \
                        or episodes < 0:
                    errors.append(f"{upath}.episodes: must be a non-negative "
                                  f"integer")
                batches = unit.get("batches")
                if not isinstance(batches, list) or not batches:
                    errors.append(f"{upath}.batches: must be a non-empty array")
                    batches = []
                extinct = sum(1 for b in batches if isinstance(b, dict) and
                              b.get("extinct") is True)
                if unit.get("extinct_batches") != extinct:
                    errors.append(f"{upath}.extinct_batches: must equal the "
                                  f"number of extinct batches[] entries")
                for k, batch in enumerate(batches):
                    bpath = f"{upath}.batches[{k}]"
                    if not isinstance(batch, dict):
                        errors.append(f"{bpath}: must be an object")
                        continue
                    for key in ("done", "extinct"):
                        if batch.get(key) not in (True, False):
                            errors.append(f"{bpath}.{key}: must be a bool")
                    if not prob(batch.get("p_hat")):
                        errors.append(f"{bpath}.p_hat: must be a probability "
                                      f"in [0, 1]")
                    levels = batch.get("levels")
                    survivors = batch.get("survivors")
                    if not isinstance(levels, list) \
                            or not isinstance(survivors, list) \
                            or len(levels) != len(survivors):
                        errors.append(f"{bpath}: levels and survivors must be "
                                      f"arrays of equal length")
                        continue
                    numeric = all(isinstance(v, (int, float)) and
                                  not isinstance(v, bool) for v in levels)
                    if not numeric or any(v > 0.0 for v in levels) or \
                            any(lo >= hi for lo, hi in zip(levels, levels[1:])):
                        errors.append(f"{bpath}.levels: must be a strictly "
                                      f"increasing ladder ending at or "
                                      f"below 0")
                    for s in survivors:
                        if not isinstance(s, int) or isinstance(s, bool) \
                                or s < 0 or \
                                (trials is not None and s > trials):
                            errors.append(f"{bpath}.survivors: each count "
                                          f"must be an integer in "
                                          f"[0, trials]")
                            break

    serve = candidate.get("bench_serve")
    if serve is not None:
        if serve.get("bit_identical") is not True:
            errors.append("bench_serve.bit_identical: must be true (batched "
                          "decisions must reproduce the per-session path)")
        if serve.get("errors") != 0:
            errors.append("bench_serve.errors: must be 0 (fault-free traffic "
                          "must never draw an error response)")
        sessions = serve.get("sessions")
        if not isinstance(sessions, int) or isinstance(sessions, bool) \
                or sessions < 10000:
            errors.append("bench_serve.sessions: must be an integer >= 10000 "
                          "(the service-capacity contract)")
        p50, p99 = serve.get("p50_ms"), serve.get("p99_ms")
        numbers = all(isinstance(v, (int, float)) and not isinstance(v, bool)
                      for v in (p50, p99))
        if not numbers or p50 < 0 or p50 > p99:
            errors.append("bench_serve.p50_ms/p99_ms: must satisfy "
                          "0 <= p50 <= p99")
        rate = serve.get("sessions_per_s")
        if not isinstance(rate, (int, float)) or isinstance(rate, bool) \
                or rate <= 0:
            errors.append("bench_serve.sessions_per_s: must be > 0")
        if serve.get("transport") not in ("socket", "stdio", "inproc"):
            errors.append("bench_serve.transport: must be 'socket', 'stdio', "
                          "or 'inproc'")
        tick_workers = serve.get("tick_workers")
        if not isinstance(tick_workers, int) or isinstance(tick_workers, bool) \
                or tick_workers < 1:
            errors.append("bench_serve.tick_workers: must be a positive integer")
        bursts = serve.get("burst_sessions")
        if not isinstance(bursts, int) or isinstance(bursts, bool) or bursts < 0:
            errors.append("bench_serve.burst_sessions: must be a non-negative "
                          "integer")

    ticks = candidate.get("serve_tick_latency_ms")
    if ticks is not None:
        if not isinstance(ticks, list) or not ticks:
            errors.append("serve_tick_latency_ms: must be a non-empty array "
                          "of per-control-period latency histograms")
        else:
            for i, tl in enumerate(ticks):
                path = f"serve_tick_latency_ms[{i}]"
                if not isinstance(tl, dict):
                    errors.append(f"{path}: must be an object")
                    continue
                samples = tl.get("samples")
                if not isinstance(samples, int) or isinstance(samples, bool) \
                        or samples < 1:
                    errors.append(f"{path}.samples: must be a positive integer")
                vals = [tl.get(k) for k in ("p50", "p99", "max")]
                if not all(isinstance(v, (int, float)) and
                           not isinstance(v, bool) for v in vals) or \
                        not 0 <= vals[0] <= vals[1] <= vals[2]:
                    errors.append(f"{path}: must satisfy 0 <= p50 <= p99 <= max")
                for lo_key, hi_key in (("submit_p50", "submit_p99"),
                                       ("wait_p50", "wait_p99")):
                    lo, hi = tl.get(lo_key), tl.get(hi_key)
                    if not all(isinstance(v, (int, float)) and
                               not isinstance(v, bool) for v in (lo, hi)) or \
                            not 0 <= lo <= hi:
                        errors.append(f"{path}: must satisfy 0 <= {lo_key} "
                                      f"<= {hi_key}")

    kernels = candidate.get("kernels")
    if kernels is not None:
        if kernels.get("avx2_native") not in (True, False):
            errors.append("kernels.avx2_native: must be a bool (did the avx2 "
                          "column run vector code or the scalar fallback?)")
        results = kernels.get("results")
        if not isinstance(results, list) or not results:
            errors.append("kernels.results: must be a non-empty array of "
                          "per-kernel measurements")
        else:
            for i, k in enumerate(results):
                path = f"kernels.results[{i}]"
                if not isinstance(k, dict):
                    errors.append(f"{path}: must be an object")
                    continue
                if not isinstance(k.get("kernel"), str) or not k.get("kernel"):
                    errors.append(f"{path}.kernel: must be a non-empty string")
                bpo = k.get("bytes_per_op")
                if not isinstance(bpo, int) or isinstance(bpo, bool) or bpo < 1:
                    errors.append(f"{path}.bytes_per_op: must be a positive "
                                  f"integer")
                for isa in ("scalar", "avx2"):
                    col = k.get(isa)
                    if not isinstance(col, dict):
                        errors.append(f"{path}.{isa}: missing timing object")
                        continue
                    for key in ("ns_per_op", "gb_per_s"):
                        v = col.get(key)
                        if not isinstance(v, (int, float)) \
                                or isinstance(v, bool) or v <= 0:
                            errors.append(f"{path}.{isa}.{key}: must be a "
                                          f"positive number")

    cert = candidate.get("cert_cold_start")
    if cert is not None:
        if cert.get("bit_identical") is not True:
            errors.append("cert_cold_start.bit_identical: must be true "
                          "(load must reproduce synthesis exactly)")
        if not isinstance(cert.get("plants"), int) or cert.get("plants") < 1:
            errors.append("cert_cold_start.plants: must be a positive integer")
        speedup = cert.get("speedup")
        if not isinstance(speedup, (int, float)) or isinstance(speedup, bool) \
                or speedup < 1.0:
            errors.append("cert_cold_start.speedup: must be a number >= 1 "
                          "(the cache must never lose to synthesis)")


def main(argv):
    if len(argv) == 3 and argv[1] == "--self":
        reference = None
        candidate_path = argv[2]
    elif len(argv) == 3:
        with open(argv[1]) as f:
            reference = json.load(f)
        candidate_path = argv[2]
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(candidate_path) as f:
        candidate = json.load(f)

    errors = []
    if reference is not None:
        # An all-splitting campaign aggregates nothing into the crude
        # counting section; its empty results[] is legitimate.
        splitting = bool((candidate.get("config") or {}).get("splitting"))
        allow_empty = frozenset({"results"}) if splitting else frozenset()
        compare(reference, candidate, "", errors, allow_empty)
    check_semantics(candidate, errors)

    if errors:
        against = "(self)" if reference is None else f"against {argv[1]}"
        print(f"{candidate_path}: schema check FAILED {against}:")
        for e in errors:
            print(f"  - {e}")
        return 1
    verdict = "semantic invariants hold" if reference is None else \
        f"schema matches {argv[1]}, safety invariants hold"
    print(f"{candidate_path}: {verdict}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
